package sim

// Bench-of-the-bench: pins the speed of the simulation kernel itself, so a
// regression in the engine (allocation churn, heap tombstones, mailbox
// bookkeeping) is caught by CI rather than silently inflating every
// experiment's wall-clock cost. Companion to BenchmarkGridPoint in
// internal/bench, which measures the same thing through a full deployment.

import (
	"testing"
	"time"
)

// BenchmarkKernelSleep measures the pure timer path: one process sleeping
// b.N times. Exercises event allocation, heap push/pop, and the ready list.
func BenchmarkKernelSleep(b *testing.B) {
	env := New(1)
	defer env.Close()
	env.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkKernelPingPong measures the mailbox rendezvous path: two
// processes exchanging b.N messages over two mailboxes. Exercises waiter
// registration, park/unpark, and queue push/pop.
func BenchmarkKernelPingPong(b *testing.B) {
	env := New(1)
	defer env.Close()
	req := NewMailbox[int](env)
	resp := NewMailbox[int](env)
	env.Spawn("server", func(p *Proc) {
		for {
			v := req.Recv(p)
			if v < 0 {
				return
			}
			resp.Send(v)
		}
	})
	env.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			req.Send(i)
			resp.Recv(p)
		}
		req.Send(-1)
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkKernelRecvTimeoutSatisfied measures the timer-cancellation path:
// a server waits with a long timeout and every wait is satisfied by a send,
// so each iteration schedules a timer that never fires. This is the path
// where lazy tombstones accumulate in the heap and leaked waiters pile up.
func BenchmarkKernelRecvTimeoutSatisfied(b *testing.B) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	env.Spawn("server", func(p *Proc) {
		for {
			v, ok := mb.RecvTimeout(p, time.Hour)
			if !ok || v < 0 {
				return
			}
		}
	})
	env.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			mb.Send(i)
			p.Sleep(time.Microsecond)
		}
		mb.Send(-1)
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkKernelRecvTimeoutExpired measures the timeout-firing path: every
// wait expires. This is the path where timed-out waiters leak in the
// mailbox's waiter list when sends are rare.
func BenchmarkKernelRecvTimeoutExpired(b *testing.B) {
	env := New(1)
	defer env.Close()
	mb := NewMailbox[int](env)
	env.Spawn("server", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			mb.RecvTimeout(p, time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}

// BenchmarkKernelEventCallbacks measures the At/After callback path used by
// simnet deliveries: b.N events scheduled and fired.
func BenchmarkKernelEventCallbacks(b *testing.B) {
	env := New(1)
	defer env.Close()
	var fired int
	env.Spawn("scheduler", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Env().After(time.Microsecond, func() { fired++ })
			p.Sleep(2 * time.Microsecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
	if fired != b.N {
		b.Fatalf("fired %d, want %d", fired, b.N)
	}
}

// BenchmarkKernelResourceDeferred measures the fluid-resource fast path
// (UseDeferred + Flush), the idiom the NDB thread model runs per request.
func BenchmarkKernelResourceDeferred(b *testing.B) {
	env := New(1)
	defer env.Close()
	res := NewResource(env, "cpu", 2)
	env.Spawn("worker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			res.UseDeferred(p, time.Microsecond)
			p.Flush()
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	env.Run()
}
