package cephfs

import (
	"errors"
	"testing"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

func testCluster(t *testing.T, mode Mode, kernelCache bool, mdsCount int) (*sim.Env, *Cluster) {
	t.Helper()
	env := sim.New(31)
	t.Cleanup(env.Close)
	net := simnet.New(env, simnet.USWest1())
	cfg := DefaultConfig()
	cfg.Mode = mode
	cfg.KernelCache = kernelCache
	zones := make([]simnet.ZoneID, mdsCount)
	for i := range zones {
		zones[i] = simnet.ZoneID(i%3 + 1)
	}
	return env, New(env, net, cfg, zones, 700)
}

func run(t *testing.T, env *sim.Env, fn func(p *sim.Proc)) {
	t.Helper()
	done := false
	env.Spawn("test", func(p *sim.Proc) { fn(p); done = true })
	env.RunFor(time.Minute)
	if !done {
		t.Fatal("test process did not finish")
	}
}

func TestBasicNamespaceOps(t *testing.T) {
	env, c := testCluster(t, DirPinned, true, 3)
	cl := c.NewClient(1, 800)
	run(t, env, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/d/f", 0); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Stat(p, "/d/f"); err != nil {
			t.Error(err)
		}
		if err := cl.List(p, "/d"); err != nil {
			t.Error(err)
		}
		if err := cl.Read(p, "/d/f"); err != nil {
			t.Error(err)
		}
		if err := cl.Read(p, "/d"); !errors.Is(err, ErrIsDir) {
			t.Errorf("read dir: %v", err)
		}
		if err := cl.Delete(p, "/d", false); !errors.Is(err, ErrNotEmpty) {
			t.Errorf("delete non-empty: %v", err)
		}
		if err := cl.Delete(p, "/d", true); err != nil {
			t.Error(err)
		}
		if err := cl.Stat(p, "/d"); !errors.Is(err, ErrNotFound) {
			t.Errorf("stat deleted: %v", err)
		}
	})
}

func TestKernelCacheHitsSkipMDS(t *testing.T) {
	env, c := testCluster(t, DirPinned, true, 3)
	cl := c.NewClient(1, 800)
	run(t, env, func(p *sim.Proc) {
		if err := cl.Create(p, "/f", 0); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			if err := cl.Stat(p, "/f"); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if cl.CacheHits != 4 {
		t.Fatalf("cache hits = %d, want 4 (first stat misses)", cl.CacheHits)
	}
	var mdsReqs int64
	for _, m := range c.MDSs() {
		mdsReqs += m.Requests
	}
	if mdsReqs != 2 { // create + first stat
		t.Fatalf("MDS requests = %d, want 2", mdsReqs)
	}
}

func TestSkipKernelCacheSendsEverythingToMDS(t *testing.T) {
	env, c := testCluster(t, DirPinned, false, 3)
	cl := c.NewClient(1, 800)
	run(t, env, func(p *sim.Proc) {
		if err := cl.Create(p, "/f", 0); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 5; i++ {
			if err := cl.Stat(p, "/f"); err != nil {
				t.Error(err)
				return
			}
		}
	})
	if cl.CacheHits != 0 {
		t.Fatalf("cache hits = %d with cache disabled", cl.CacheHits)
	}
	var mdsReqs int64
	for _, m := range c.MDSs() {
		mdsReqs += m.Requests
	}
	if mdsReqs != 6 {
		t.Fatalf("MDS requests = %d, want 6", mdsReqs)
	}
}

func TestMutationRevokesOtherClientsCaps(t *testing.T) {
	env, c := testCluster(t, DirPinned, true, 3)
	a := c.NewClient(1, 800)
	b := c.NewClient(2, 801)
	run(t, env, func(p *sim.Proc) {
		if err := a.Create(p, "/f", 0); err != nil {
			t.Error(err)
			return
		}
		if err := b.Stat(p, "/f"); err != nil { // b caches /f
			t.Error(err)
			return
		}
		if err := a.SetPermission(p, "/f", 0o600); err != nil { // revokes b's cap
			t.Error(err)
			return
		}
		before := b.CacheHits
		if err := b.Stat(p, "/f"); err != nil {
			t.Error(err)
			return
		}
		if b.CacheHits != before {
			t.Error("stat after revoke served from stale cache")
		}
	})
}

func TestDirPinnedSpreadsSubtrees(t *testing.T) {
	env, c := testCluster(t, DirPinned, false, 6)
	cl := c.NewClient(1, 800)
	run(t, env, func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			if err := cl.Mkdir(p, "/dir"+string(rune('a'+i))); err != nil {
				t.Error(err)
				return
			}
		}
	})
	owners := map[int]bool{}
	for _, idx := range c.owners {
		owners[idx] = true
	}
	if len(owners) < 3 {
		t.Fatalf("12 pinned subtrees landed on %d MDSs, want spread", len(owners))
	}
}

func TestDynamicBalancerMigratesLoad(t *testing.T) {
	env, c := testCluster(t, Dynamic, false, 3)
	cl := c.NewClient(1, 800)
	run(t, env, func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			if err := cl.Mkdir(p, "/dir"+string(rune('a'+i))); err != nil {
				t.Error(err)
				return
			}
		}
		// Everything starts on MDS 0 under dynamic mode.
		for name, idx := range c.owners {
			if idx != 0 {
				t.Errorf("subtree %s initially on MDS %d", name, idx)
			}
		}
		// Generate load, then let the balancer run a few rounds.
		for round := 0; round < 4; round++ {
			for i := 0; i < 6; i++ {
				if err := cl.List(p, "/dir"+string(rune('a'+i))); err != nil {
					t.Error(err)
					return
				}
			}
			p.Sleep(c.cfg.BalanceInterval)
		}
	})
	moved := 0
	for _, idx := range c.owners {
		if idx != 0 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("dynamic balancer never migrated a subtree")
	}
}

func TestJournalFlushReachesOSDDisks(t *testing.T) {
	env, c := testCluster(t, DirPinned, true, 3)
	cl := c.NewClient(1, 800)
	run(t, env, func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			if err := cl.Create(p, "/f"+string(rune('0'+i)), 0); err != nil {
				t.Error(err)
				return
			}
		}
		p.Sleep(time.Second)
	})
	var disk int64
	for _, osd := range c.OSDs() {
		_, w := osd.Node.DiskBytes()
		disk += w
	}
	if disk < int64(10*c.cfg.JournalEntryBytes) {
		t.Fatalf("OSD disk writes = %d, want >= %d (journal)", disk, 10*c.cfg.JournalEntryBytes)
	}
}

func TestMDSFailoverReassignsSubtree(t *testing.T) {
	env, c := testCluster(t, DirPinned, true, 3)
	cl := c.NewClient(1, 800)
	run(t, env, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/d"); err != nil {
			t.Error(err)
			return
		}
	})
	owner := c.owner([]string{"d"})
	owner.Fail()
	run(t, env, func(p *sim.Proc) {
		if err := cl.Create(p, "/d/f", 0); err != nil {
			t.Errorf("create after MDS failure: %v", err)
		}
	})
}

func TestRenameCrossSubtree(t *testing.T) {
	env, c := testCluster(t, DirPinned, true, 6)
	cl := c.NewClient(1, 800)
	run(t, env, func(p *sim.Proc) {
		if err := cl.Mkdir(p, "/srcdir"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Mkdir(p, "/dstdir"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Create(p, "/srcdir/f", 0); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Rename(p, "/srcdir/f", "/dstdir/g"); err != nil {
			t.Error(err)
			return
		}
		if err := cl.Stat(p, "/dstdir/g"); err != nil {
			t.Errorf("stat renamed: %v", err)
		}
		if err := cl.Stat(p, "/srcdir/f"); !errors.Is(err, ErrNotFound) {
			t.Errorf("stat old path: %v", err)
		}
	})
}

func TestSingleThreadedMDSSerializesRequests(t *testing.T) {
	env, c := testCluster(t, DirPinned, false, 1)
	var done [2]time.Duration
	for i := 0; i < 2; i++ {
		i := i
		cl := c.NewClient(1, simnet.HostID(800+i))
		env.Spawn("load", func(p *sim.Proc) {
			if err := cl.Create(p, "/f"+string(rune('0'+i)), 0); err != nil {
				t.Error(err)
			}
			done[i] = p.Now()
		})
	}
	env.RunFor(time.Minute)
	gap := done[1] - done[0]
	if gap < 0 {
		gap = -gap
	}
	if gap < c.cfg.Costs.MDSOp/2 {
		t.Fatalf("two requests finished %v apart; MDS should serialize (op cost %v)", gap, c.cfg.Costs.MDSOp)
	}
}

func TestSkipKCacheStillTracksCaps(t *testing.T) {
	env, c := testCluster(t, DirPinned, false, 3)
	a := c.NewClient(1, 800)
	b := c.NewClient(2, 801)
	run(t, env, func(p *sim.Proc) {
		if err := a.Create(p, "/f", 0); err != nil {
			t.Error(err)
			return
		}
		// Both clients read: the MDS tracks capabilities for each even
		// though neither caches (the paper's SkipKCache overhead).
		if err := a.Stat(p, "/f"); err != nil {
			t.Error(err)
			return
		}
		if err := b.Stat(p, "/f"); err != nil {
			t.Error(err)
		}
	})
	m := c.owner([]string{"f"})
	if got := len(m.caps["/f"]); got != 2 {
		t.Fatalf("MDS tracks %d cap holders, want 2 (even with cache skipped)", got)
	}
}

func TestAttrMutationKeepsListCaps(t *testing.T) {
	env, c := testCluster(t, DirPinned, true, 3)
	a := c.NewClient(1, 800)
	b := c.NewClient(2, 801)
	run(t, env, func(p *sim.Proc) {
		if err := a.Mkdir(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		if err := a.Create(p, "/d/f", 0); err != nil {
			t.Error(err)
			return
		}
		if err := b.List(p, "/d"); err != nil { // b caches the listing
			t.Error(err)
			return
		}
		if err := b.Stat(p, "/d/f"); err != nil { // b caches the inode
			t.Error(err)
			return
		}
		// chmod: an attribute mutation. It must revoke the inode cap but
		// leave the directory-listing cap valid.
		if err := a.SetPermission(p, "/d/f", 0o600); err != nil {
			t.Error(err)
			return
		}
		hitsBefore := b.CacheHits
		if err := b.List(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		if b.CacheHits != hitsBefore+1 {
			t.Error("listing cap was revoked by an attribute mutation")
		}
		if err := b.Stat(p, "/d/f"); err != nil {
			t.Error(err)
			return
		}
		if b.CacheHits != hitsBefore+1 {
			t.Error("inode cap survived the attribute mutation")
		}
	})
}

func TestNamespaceMutationRevokesListCaps(t *testing.T) {
	env, c := testCluster(t, DirPinned, true, 3)
	a := c.NewClient(1, 800)
	b := c.NewClient(2, 801)
	run(t, env, func(p *sim.Proc) {
		if err := a.Mkdir(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		if err := b.List(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		if err := a.Create(p, "/d/new", 0); err != nil { // changes the listing
			t.Error(err)
			return
		}
		hitsBefore := b.CacheHits
		if err := b.List(p, "/d"); err != nil {
			t.Error(err)
			return
		}
		if b.CacheHits != hitsBefore {
			t.Error("stale listing served from cache after a create")
		}
	})
}
