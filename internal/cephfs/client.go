package cephfs

import (
	"strings"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

const (
	rpcReqSize  = 256
	rpcRespSize = 512
)

// Client is a CephFS kernel client. With the kernel cache enabled, inodes
// it holds capabilities for are served locally; the owning MDS revokes the
// capability (and the cache entry) when another client mutates the inode.
type Client struct {
	c    *Cluster
	Node *simnet.Node

	cache map[string]bool

	// Ops counts completed operations; CacheHits the ones served from the
	// kernel cache; LatencySum feeds average-latency reporting.
	Ops        int64
	CacheHits  int64
	LatencySum time.Duration
}

// NewClient registers a kernel client in the given zone.
func (c *Cluster) NewClient(zone simnet.ZoneID, host simnet.HostID) *Client {
	cl := &Client{
		c:     c,
		Node:  c.net.NewNode("ceph-client", zone, host),
		cache: make(map[string]bool),
	}
	c.clients = append(c.clients, cl)
	return cl
}

// cached serves a read from the kernel cache if the capability is valid.
func (cl *Client) cached(p *sim.Proc, key string) bool {
	if !cl.c.cfg.KernelCache || !cl.cache[key] {
		return false
	}
	p.Sleep(cl.c.cfg.Costs.ClientCacheHit)
	cl.Ops++
	cl.CacheHits++
	cl.LatencySum += cl.c.cfg.Costs.ClientCacheHit
	return true
}

// mutKind distinguishes mutations that change directory contents (create,
// delete, rename — these revoke the parent's listing capabilities) from
// attribute-only updates (chmod/chown — these revoke only the inode's own
// caps).
type mutKind int

const (
	readOnly mutKind = iota
	attrMutation
	namespaceMutation
)

// mdsOp runs one request on the subtree's MDS under its global lock.
func (cl *Client) mdsOp(p *sim.Proc, comps []string, kind mutKind, cacheKey string, apply func() error) error {
	start := p.Now()
	m := cl.c.owner(comps)
	if m == nil {
		return ErrDown
	}
	if !cl.c.net.Travel(p, cl.Node, m.Node, rpcReqSize, 5*time.Second) {
		return ErrDown
	}
	costs := &cl.c.cfg.Costs
	m.cpu.Acquire(p, 1)
	p.Sleep(costs.MDSOp + time.Duration(len(comps))*costs.PerComponent)
	if !cl.c.cfg.KernelCache {
		// SkipKCache churn: the kernel client immediately drops the
		// capabilities it is granted, so every operation additionally
		// costs the MDS a grant/release round of cap processing.
		p.Sleep(costs.MDSOp)
	}
	err := apply()
	m.Requests++
	m.loadWindow++
	if err == nil && kind != readOnly {
		m.journalBytes += cl.c.cfg.JournalEntryBytes
		cl.revokeCaps(p, m, comps, kind == namespaceMutation)
	}
	if err == nil && kind == readOnly && cacheKey != "" {
		// The MDS always issues and tracks capabilities for kernel
		// clients — even when the client skips its cache (the paper's
		// SkipKCache setup), the cap bookkeeping and later revocation
		// fan-out remain ("the MDSs have to keep track of all clients
		// capabilities", §V-A).
		p.Sleep(costs.CapIssue)
		holders := m.caps[cacheKey]
		if holders == nil {
			holders = make(map[*Client]bool)
			m.caps[cacheKey] = holders
		}
		holders[cl] = true
		if cl.c.cfg.KernelCache {
			cl.cache[cacheKey] = true
		}
	}
	m.cpu.Release(1)
	if !cl.c.net.Travel(p, m.Node, cl.Node, rpcRespSize, 5*time.Second) {
		return ErrDown
	}
	cl.Ops++
	cl.LatencySum += p.Now() - start
	return err
}

// revokeCaps invalidates capabilities on the mutated path, its directory
// listing, and the parent's listing — the MDS pays per tracked client
// (the cost the paper notes leads to higher failover times and overhead).
func (cl *Client) revokeCaps(p *sim.Proc, m *MDS, comps []string, namespaceChange bool) {
	path := "/" + strings.Join(comps, "/")
	keys := []string{path}
	if namespaceChange {
		keys = append(keys, "L:"+path)
		if len(comps) > 0 {
			parent := "/" + strings.Join(comps[:len(comps)-1], "/")
			if len(comps) == 1 {
				parent = "/"
			}
			keys = append(keys, "L:"+parent)
		}
	}
	for _, key := range keys {
		holders := m.caps[key]
		for holder := range holders {
			p.Sleep(cl.c.cfg.Costs.CapRevokePerClient)
			cl.c.net.Send(m.Node, holder.Node, 64, "cap-revoke")
			delete(holder.cache, key)
		}
		delete(m.caps, key)
	}
}

// Mkdir creates a directory.
func (cl *Client) Mkdir(p *sim.Proc, path string) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return ErrExists
	}
	return cl.mdsOp(p, comps, namespaceMutation, "", func() error {
		parent, err := cl.c.lookup(comps[:len(comps)-1])
		if err != nil {
			return err
		}
		if !parent.dir {
			return ErrNotDir
		}
		name := comps[len(comps)-1]
		if _, ok := parent.children[name]; ok {
			return ErrExists
		}
		parent.children[name] = &cnode{name: name, dir: true, perm: 0o755, children: make(map[string]*cnode)}
		return nil
	})
}

// Create creates a file.
func (cl *Client) Create(p *sim.Proc, path string, size int64) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return ErrExists
	}
	return cl.mdsOp(p, comps, namespaceMutation, "", func() error {
		parent, err := cl.c.lookup(comps[:len(comps)-1])
		if err != nil {
			return err
		}
		if !parent.dir {
			return ErrNotDir
		}
		name := comps[len(comps)-1]
		if _, ok := parent.children[name]; ok {
			return ErrExists
		}
		parent.children[name] = &cnode{name: name, size: size, perm: 0o644}
		return nil
	})
}

// Stat reads an entry's metadata (cacheable).
func (cl *Client) Stat(p *sim.Proc, path string) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if cl.cached(p, path) {
		return nil
	}
	return cl.mdsOp(p, comps, readOnly, path, func() error {
		_, err := cl.c.lookup(comps)
		return err
	})
}

// Read opens a file for reading (cacheable metadata + capability).
func (cl *Client) Read(p *sim.Proc, path string) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if cl.cached(p, path) {
		return nil
	}
	return cl.mdsOp(p, comps, readOnly, path, func() error {
		n, err := cl.c.lookup(comps)
		if err != nil {
			return err
		}
		if n.dir {
			return ErrIsDir
		}
		return nil
	})
}

// List returns a directory's entries (cacheable as a whole).
func (cl *Client) List(p *sim.Proc, path string) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	key := "L:" + path
	if cl.cached(p, key) {
		return nil
	}
	return cl.mdsOp(p, comps, readOnly, key, func() error {
		n, err := cl.c.lookup(comps)
		if err != nil {
			return err
		}
		if !n.dir {
			return ErrNotDir
		}
		return nil
	})
}

// Delete removes a file or (recursively if allowed) a directory.
func (cl *Client) Delete(p *sim.Proc, path string, recursive bool) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return ErrInvalid
	}
	return cl.mdsOp(p, comps, namespaceMutation, "", func() error {
		parent, err := cl.c.lookup(comps[:len(comps)-1])
		if err != nil {
			return err
		}
		name := comps[len(comps)-1]
		n, ok := parent.children[name]
		if !ok {
			return ErrNotFound
		}
		if n.dir && len(n.children) > 0 && !recursive {
			return ErrNotEmpty
		}
		delete(parent.children, name)
		return nil
	})
}

// Rename moves src to dst. When the two paths are owned by different MDSs,
// both are involved (the export/import path in real CephFS); the extra
// coordination is charged to the destination MDS.
func (cl *Client) Rename(p *sim.Proc, src, dst string) error {
	srcComps, err := splitPath(src)
	if err != nil {
		return err
	}
	dstComps, err := splitPath(dst)
	if err != nil {
		return err
	}
	if len(srcComps) == 0 || len(dstComps) == 0 {
		return ErrInvalid
	}
	srcMDS := cl.c.owner(srcComps)
	return cl.mdsOp(p, dstComps, namespaceMutation, "", func() error {
		dstOwner := cl.c.owner(dstComps)
		if srcMDS != nil && dstOwner != nil && srcMDS != dstOwner {
			// Cross-MDS rename: the destination MDS coordinates with the
			// source subtree's MDS.
			p.Sleep(cl.c.cfg.Costs.MDSOp)
			cl.c.net.Send(dstOwner.Node, srcMDS.Node, rpcReqSize, "rename-export")
		}
		srcParent, err := cl.c.lookup(srcComps[:len(srcComps)-1])
		if err != nil {
			return err
		}
		srcName := srcComps[len(srcComps)-1]
		n, ok := srcParent.children[srcName]
		if !ok {
			return ErrNotFound
		}
		dstParent, err := cl.c.lookup(dstComps[:len(dstComps)-1])
		if err != nil {
			return err
		}
		if !dstParent.dir {
			return ErrNotDir
		}
		dstName := dstComps[len(dstComps)-1]
		if _, ok := dstParent.children[dstName]; ok {
			return ErrExists
		}
		// Cycle guard: walking from n must not reach dstParent.
		if n.dir && subtreeContains(n, dstParent) {
			return ErrInvalid
		}
		delete(srcParent.children, srcName)
		n.name = dstName
		dstParent.children[dstName] = n
		return nil
	})
}

// SetPermission updates an entry's mode bits (an attribute mutation: the
// inode's caps are revoked, directory listings stay valid).
func (cl *Client) SetPermission(p *sim.Proc, path string, perm uint16) error {
	comps, err := splitPath(path)
	if err != nil {
		return err
	}
	if len(comps) == 0 {
		return ErrInvalid
	}
	return cl.mdsOp(p, comps, attrMutation, "", func() error {
		n, err := cl.c.lookup(comps)
		if err != nil {
			return err
		}
		n.perm = perm
		return nil
	})
}

func subtreeContains(root, target *cnode) bool {
	if root == target {
		return true
	}
	for _, child := range root.children {
		if child.dir && subtreeContains(child, target) {
			return true
		}
	}
	return false
}
