// Package cephfs models the comparison baseline of the paper's evaluation
// (§V-A(b)): a CephFS cluster with monitor-elided setup, object storage
// daemons (OSDs) backing the metadata pool, and metadata servers (MDSs)
// that each own a subtree of the namespace.
//
// The model captures exactly the mechanisms the paper credits for CephFS's
// measured behaviour:
//
//   - each MDS is single threaded and serializes on a global lock (a CPU
//     resource of capacity one), bounding per-MDS throughput;
//   - the namespace is partitioned across MDSs by subtree, either by the
//     dynamic balancer or by manual pinning (CephFS - DirPinned);
//   - kernel clients cache inodes under capabilities granted by the MDS;
//     cache hits are served locally, and the MDS pays to track and revoke
//     capabilities on mutations (CephFS - SkipKCache disables the cache);
//   - every mutation is journaled, and journals are periodically flushed
//     to the OSDs' disks — the disk load that caps DirPinned throughput
//     past 24 MDSs (§V-D1).
package cephfs

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// Namespace errors (mirroring the namenode package's semantics).
var (
	ErrNotFound = errors.New("cephfs: no such file or directory")
	ErrExists   = errors.New("cephfs: file exists")
	ErrNotDir   = errors.New("cephfs: not a directory")
	ErrIsDir    = errors.New("cephfs: is a directory")
	ErrNotEmpty = errors.New("cephfs: directory not empty")
	ErrInvalid  = errors.New("cephfs: invalid path")
	ErrDown     = errors.New("cephfs: mds unavailable")
)

// Mode selects the metadata load-balancing strategy.
type Mode int

// Balancing modes.
const (
	// Dynamic is the default CephFS subtree balancer: subtrees migrate
	// between MDSs chasing load, with lag.
	Dynamic Mode = iota + 1
	// DirPinned statically pins top-level directories to MDSs (the
	// paper's "CephFS - DirPinned" setup).
	DirPinned
)

// Config parameterizes the cluster.
type Config struct {
	// OSDs is the number of object storage daemons (paper: 12, matching
	// the 12 NDB datanodes).
	OSDs int
	// Mode selects dynamic balancing or manual pinning.
	Mode Mode
	// KernelCache enables client-side caching under capabilities; false
	// reproduces "CephFS - SkipKCache".
	KernelCache bool
	// JournalFlushInterval is how often each MDS flushes its journal.
	JournalFlushInterval time.Duration
	// JournalEntryBytes is the journal growth per mutating operation.
	JournalEntryBytes int
	// JournalReplication is the metadata-pool replication factor: each
	// flush is written to this many OSDs (paper: 3).
	JournalReplication int
	// BalanceInterval is the dynamic balancer period.
	BalanceInterval time.Duration
	// OSDDiskBandwidth is the metadata-pool disk throughput per OSD.
	OSDDiskBandwidth float64
	// Costs are MDS/client CPU service demands.
	Costs Costs
}

// Costs model the single-threaded MDS's service times.
type Costs struct {
	// MDSOp is the base cost of handling one request under the MDS global
	// lock.
	MDSOp time.Duration
	// PerComponent is charged per path component resolved.
	PerComponent time.Duration
	// CapIssue is charged when granting a capability to a caching client.
	CapIssue time.Duration
	// CapRevokePerClient is charged per client notified when a mutation
	// invalidates cached capabilities.
	CapRevokePerClient time.Duration
	// ClientCacheHit is the end-to-end client cost of a kernel-cache hit:
	// VFS + benchmark-tool overhead. Calibrated from the paper's own
	// Figure 8 (CephFS-DirPinned average latency is ~1.9x below
	// HopsFS-CL's ~1.4 ms, i.e. cached operations complete in ~0.7 ms).
	ClientCacheHit time.Duration
	// JournalFlushCPU is the MDS thread time consumed per flush.
	JournalFlushCPU time.Duration
}

// DefaultConfig returns a configuration calibrated against the paper's
// CephFS v13.2.4 measurements (≈4.2 kops/s per unloaded pinned MDS).
func DefaultConfig() Config {
	return Config{
		OSDs:                 12,
		Mode:                 Dynamic,
		KernelCache:          true,
		JournalFlushInterval: 25 * time.Millisecond,
		JournalEntryBytes:    16 << 10,
		JournalReplication:   3,
		BalanceInterval:      50 * time.Millisecond,
		OSDDiskBandwidth:     120e6,
		Costs: Costs{
			MDSOp:              180 * time.Microsecond,
			PerComponent:       8 * time.Microsecond,
			CapIssue:           12 * time.Microsecond,
			CapRevokePerClient: 10 * time.Microsecond,
			ClientCacheHit:     700 * time.Microsecond,
			JournalFlushCPU:    2 * time.Millisecond,
		},
	}
}

// cnode is one namespace entry (CephFS keeps the authoritative tree in MDS
// memory, persisted via the journal and directory objects on OSDs).
type cnode struct {
	name     string
	dir      bool
	size     int64
	perm     uint16
	owner    string
	children map[string]*cnode
}

// Cluster is a running CephFS deployment.
type Cluster struct {
	env *sim.Env
	net *simnet.Network
	cfg Config

	osds []*OSD
	mdss []*MDS
	root *cnode

	// owners maps top-level directory names to MDS indices; the root
	// itself is owned by MDS 0.
	owners map[string]int

	clients []*Client
	stop    bool
	osdNext int
}

// OSD is one object storage daemon.
type OSD struct {
	Node *simnet.Node
}

// MDS is one single-threaded metadata server.
type MDS struct {
	c     *Cluster
	Node  *simnet.Node
	Index int

	// cpu has capacity 1: the MDS global lock (§VI).
	cpu *sim.Resource

	journalBytes int

	// caps tracks which clients hold capabilities on which paths.
	caps map[string]map[*Client]bool

	// Requests counts MDS-handled requests (Figure 6's per-MDS
	// throughput); cache hits never reach the MDS.
	Requests int64
	// loadWindow counts requests since the last balancer pass.
	loadWindow int64

	down bool
}

// CPU exposes the MDS thread for utilization accounting.
func (m *MDS) CPU() *sim.Resource { return m.cpu }

// Alive reports whether the MDS is serving.
func (m *MDS) Alive() bool { return m.Node.Alive() && !m.down }

// Fail takes the MDS down.
func (m *MDS) Fail() { m.down = true; m.Node.Fail() }

// New builds a CephFS cluster with the given MDS placements; OSDs are
// spread round-robin over the zones used by the MDSs (the paper deploys
// CephFS HA across 3 AZs with metadata replication 3).
func New(env *sim.Env, net *simnet.Network, cfg Config, mdsPlacements []simnet.ZoneID, hostBase int) *Cluster {
	c := &Cluster{
		env:    env,
		net:    net,
		cfg:    cfg,
		root:   &cnode{name: "", dir: true, perm: 0o755, children: make(map[string]*cnode)},
		owners: make(map[string]int),
	}
	zones := map[simnet.ZoneID]bool{}
	var zoneList []simnet.ZoneID
	for _, z := range mdsPlacements {
		if !zones[z] {
			zones[z] = true
			zoneList = append(zoneList, z)
		}
	}
	if len(zoneList) == 0 {
		zoneList = []simnet.ZoneID{1}
	}
	for i := 0; i < cfg.OSDs; i++ {
		node := net.NewNode(fmt.Sprintf("osd-%d", i+1), zoneList[i%len(zoneList)], simnet.HostID(hostBase+i))
		node.DiskBandwidth = cfg.OSDDiskBandwidth
		c.osds = append(c.osds, &OSD{Node: node})
	}
	for i, z := range mdsPlacements {
		m := &MDS{
			c:     c,
			Node:  net.NewNode(fmt.Sprintf("mds-%d", i+1), z, simnet.HostID(hostBase+cfg.OSDs+i)),
			Index: i,
			cpu:   sim.NewResource(env, fmt.Sprintf("mds-%d/cpu", i+1), 1),
			caps:  make(map[string]map[*Client]bool),
		}
		c.mdss = append(c.mdss, m)
		env.Spawn(m.Node.Name()+"/journal", func(p *sim.Proc) { m.journalLoop(p) })
	}
	if cfg.Mode == Dynamic {
		env.Spawn("mds-balancer", func(p *sim.Proc) { c.balanceLoop(p) })
	}
	return c
}

// Stop halts background processes at their next tick.
func (c *Cluster) Stop() { c.stop = true }

// MDSs returns the metadata servers.
func (c *Cluster) MDSs() []*MDS { return c.mdss }

// OSDs returns the object storage daemons.
func (c *Cluster) OSDs() []*OSD { return c.osds }

// owner returns the MDS responsible for a path's subtree.
func (c *Cluster) owner(comps []string) *MDS {
	if len(comps) == 0 {
		return c.liveMDS(0)
	}
	top := comps[0]
	idx, ok := c.owners[top]
	if !ok {
		switch c.cfg.Mode {
		case DirPinned:
			idx = hashString(top) % len(c.mdss)
		default:
			// Dynamic: new subtrees land on MDS 0 until the balancer
			// migrates them.
			idx = 0
		}
		c.owners[top] = idx
	}
	return c.liveMDS(idx)
}

// liveMDS returns the MDS at idx, or the next alive one (CephFS standby
// takeover collapsed to instant reassignment; the paper notes pinning
// increases failover time, which we do not model further).
func (c *Cluster) liveMDS(idx int) *MDS {
	n := len(c.mdss)
	for i := 0; i < n; i++ {
		m := c.mdss[(idx+i)%n]
		if m.Alive() {
			return m
		}
	}
	return nil
}

func hashString(s string) int {
	h := 0
	for _, b := range []byte(s) {
		h = h*31 + int(b)
	}
	if h < 0 {
		h = -h
	}
	return h
}

// journalLoop flushes the MDS journal to an OSD every interval. The flush
// runs under the MDS global lock (it "reduces available resources for
// processing file system operations", §V-C) and queues on the OSD disk.
func (m *MDS) journalLoop(p *sim.Proc) {
	for !m.c.stop {
		p.Sleep(m.c.cfg.JournalFlushInterval)
		if !m.Alive() {
			return
		}
		if m.journalBytes == 0 {
			continue
		}
		bytes := m.journalBytes
		m.journalBytes = 0
		m.cpu.Acquire(p, 1)
		p.Sleep(m.c.cfg.Costs.JournalFlushCPU)
		reps := m.c.cfg.JournalReplication
		if reps <= 0 {
			reps = 1
		}
		for r := 0; r < reps; r++ {
			osd := m.c.osds[m.c.osdNext%len(m.c.osds)]
			m.c.osdNext++
			if m.c.net.Travel(p, m.Node, osd.Node, bytes, 5*time.Second) {
				osd.Node.DiskWrite(p, bytes)
				m.c.net.Travel(p, osd.Node, m.Node, 64, 5*time.Second)
			}
		}
		m.cpu.Release(1)
	}
}

// balanceLoop is the dynamic subtree balancer: every interval it migrates
// subtrees from the most loaded MDSs toward the least loaded ones. Like the
// real balancer ([34]) it works at whole-subtree granularity, reacts with a
// full interval of lag, and moves a bounded number of subtrees per round —
// which is why the default setup trails manual pinning under skewed load.
func (c *Cluster) balanceLoop(p *sim.Proc) {
	const movesPerRound = 4
	for !c.stop {
		p.Sleep(c.cfg.BalanceInterval)
		loads := make([]int64, len(c.mdss))
		var total int64
		for i, m := range c.mdss {
			loads[i] = m.loadWindow
			m.loadWindow = 0
			total += loads[i]
		}
		if total == 0 || len(c.mdss) < 2 {
			continue
		}
		mean := total / int64(len(c.mdss))
		for move := 0; move < movesPerRound; move++ {
			maxI, minI := 0, 0
			for i := range loads {
				if loads[i] > loads[maxI] {
					maxI = i
				}
				if loads[i] < loads[minI] {
					minI = i
				}
			}
			// Hysteresis: only migrate away from clearly hot MDSs.
			if maxI == minI || loads[maxI] <= mean+mean/3 {
				break
			}
			var names []string
			for name, idx := range c.owners {
				if idx == maxI {
					names = append(names, name)
				}
			}
			if len(names) <= 1 {
				// A single hot subtree cannot be split further — the
				// granularity limit of subtree partitioning.
				loads[maxI] = 0
				continue
			}
			sort.Strings(names)
			victim := names[p.Rand().Intn(len(names))]
			c.owners[victim] = minI
			share := loads[maxI] / int64(len(names))
			loads[maxI] -= share
			loads[minI] += share
		}
	}
}

// Seed installs directories and files directly into the namespace tree,
// bypassing the MDSs — used to pre-build benchmark namespaces without
// warm-up traffic. Directories must be listed parents-first.
func (c *Cluster) Seed(dirs, files []string) error {
	place := func(path string, dir bool) error {
		comps, err := splitPath(path)
		if err != nil {
			return err
		}
		if len(comps) == 0 {
			return nil
		}
		parent, err := c.lookup(comps[:len(comps)-1])
		if err != nil {
			return fmt.Errorf("cephfs: seed %q: %w", path, err)
		}
		name := comps[len(comps)-1]
		n := &cnode{name: name, dir: dir, perm: 0o755}
		if dir {
			n.children = make(map[string]*cnode)
		}
		parent.children[name] = n
		return nil
	}
	for _, d := range dirs {
		if err := place(d, true); err != nil {
			return err
		}
	}
	for _, f := range files {
		if err := place(f, false); err != nil {
			return err
		}
	}
	return nil
}

// lookup walks the in-memory tree.
func (c *Cluster) lookup(comps []string) (*cnode, error) {
	cur := c.root
	for _, name := range comps {
		if !cur.dir {
			return nil, ErrNotDir
		}
		next, ok := cur.children[name]
		if !ok {
			return nil, ErrNotFound
		}
		cur = next
	}
	return cur, nil
}

func splitPath(path string) ([]string, error) {
	if path == "" || path[0] != '/' {
		return nil, ErrInvalid
	}
	if path == "/" {
		return nil, nil
	}
	parts := strings.Split(strings.Trim(path, "/"), "/")
	for _, p := range parts {
		if p == "" || p == "." || p == ".." {
			return nil, ErrInvalid
		}
	}
	return parts, nil
}
