package heat

import (
	"fmt"
	"testing"
	"time"
)

// TestTopKExactUnderCapacity checks that a sketch with spare capacity
// counts exactly, with zero error bounds.
func TestTopKExactUnderCapacity(t *testing.T) {
	sk := NewTopK[string](8, 0)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		for j := 0; j <= i; j++ {
			sk.Touch(0, key, 1)
		}
	}
	top := sk.Top(0, 10)
	if len(top) != 5 {
		t.Fatalf("tracked %d keys, want 5", len(top))
	}
	for i, c := range top {
		wantCount := uint64(5 - i)
		wantKey := fmt.Sprintf("k%d", 4-i)
		if c.Key != wantKey || c.Count != wantCount || c.Err != 0 {
			t.Fatalf("rank %d = {%s %d ±%d}, want {%s %d ±0}", i+1, c.Key, c.Count, c.Err, wantKey, wantCount)
		}
	}
	if got := sk.Total(0); got != 15 {
		t.Fatalf("total %d, want 15", got)
	}
}

// TestTopKHeavyHitterGuarantee floods a capacity-4 sketch with 100 distinct
// cold keys and one hot key: Space-Saving must keep the hot key ranked
// first with a count no lower than its true frequency.
func TestTopKHeavyHitterGuarantee(t *testing.T) {
	sk := NewTopK[string](4, 0)
	for i := 0; i < 100; i++ {
		sk.Touch(0, fmt.Sprintf("cold%03d", i), 1)
		sk.Touch(0, "hot", 3)
	}
	top := sk.Top(0, 1)
	if len(top) == 0 || top[0].Key != "hot" {
		t.Fatalf("top key = %+v, want hot", top)
	}
	if top[0].Count < 300 {
		t.Fatalf("hot count %d underestimates true 300: Space-Saving must overestimate", top[0].Count)
	}
	if top[0].Count-top[0].Err > 300 {
		t.Fatalf("hot lower bound %d exceeds true 300", top[0].Count-top[0].Err)
	}
}

// TestTopKDeterministicDisplacement pins the displacement victim: equal
// counts break ties by ascending key, so the smallest key goes first.
func TestTopKDeterministicDisplacement(t *testing.T) {
	for run := 0; run < 3; run++ {
		sk := NewTopK[string](3, 0)
		sk.Touch(0, "b", 1)
		sk.Touch(0, "a", 1)
		sk.Touch(0, "c", 1)
		sk.Touch(0, "d", 1) // displaces "a" (smallest key among count-1 ties)
		top := sk.Top(0, 3)
		if top[0].Key != "d" || top[0].Count != 2 || top[0].Err != 1 {
			t.Fatalf("run %d: rank 1 = %+v, want d count 2 err 1", run, top[0])
		}
		if top[1].Key != "b" || top[2].Key != "c" {
			t.Fatalf("run %d: ranks 2,3 = %s,%s, want b,c", run, top[1].Key, top[2].Key)
		}
	}
}

// TestTopKDecay checks window halving: counts halve per crossed boundary
// and keys decayed to zero drop out entirely.
func TestTopKDecay(t *testing.T) {
	sk := NewTopK[string](8, time.Second)
	sk.Touch(0, "old", 8)
	sk.Touch(0, "tiny", 1)
	// Two window boundaries pass: 8 -> 2, 1 -> 0 (evicted).
	sk.Touch(2*time.Second+time.Millisecond, "new", 4)
	top := sk.Top(2*time.Second+time.Millisecond, 8)
	if len(top) != 2 {
		t.Fatalf("tracked %d keys after decay, want 2 (tiny evicted): %+v", len(top), top)
	}
	if top[0].Key != "new" || top[0].Count != 4 {
		t.Fatalf("rank 1 = %+v, want new count 4", top[0])
	}
	if top[1].Key != "old" || top[1].Count != 2 {
		t.Fatalf("rank 2 = %+v, want old count 2", top[1])
	}
	if got := sk.Total(2*time.Second + time.Millisecond); got != 6 {
		t.Fatalf("decayed total %d, want 6 (9>>1 + 4 - evicted rounding)", got)
	}
}

// TestTopKLongGapClears checks that a gap of 64+ windows clears the sketch
// without shifting loops.
func TestTopKLongGapClears(t *testing.T) {
	sk := NewTopK[uint64](8, time.Millisecond)
	sk.Touch(0, 7, 1<<40)
	sk.Touch(100*time.Millisecond, 9, 1)
	top := sk.Top(100*time.Millisecond, 8)
	if len(top) != 1 || top[0].Key != 9 {
		t.Fatalf("after 100-window gap: %+v, want only key 9", top)
	}
}

// TestTopKTouchAllocationFree pins the hot-path cost: touching an
// already-tracked key must not allocate (the grid-point allocation ceiling
// depends on it).
func TestTopKTouchAllocationFree(t *testing.T) {
	sk := NewTopK[string](8, time.Second)
	sk.Touch(0, "steady", 1)
	allocs := testing.AllocsPerRun(1000, func() {
		sk.Touch(time.Millisecond, "steady", 1)
	})
	if allocs > 0 {
		t.Fatalf("Touch of a tracked key allocates %.1f objects/op, want 0", allocs)
	}
}

// TestTopKDeterministicAcrossRuns drives two sketches through an identical
// schedule and requires identical rankings.
func TestTopKDeterministicAcrossRuns(t *testing.T) {
	drive := func() []Counter[string] {
		sk := NewTopK[string](6, 500*time.Millisecond)
		for i := 0; i < 500; i++ {
			now := time.Duration(i) * 7 * time.Millisecond
			sk.Touch(now, fmt.Sprintf("k%02d", i%17), uint64(1+i%3))
		}
		return sk.Top(4*time.Second, 6)
	}
	a, b := drive(), drive()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("rankings diverge:\n%v\n%v", a, b)
	}
}
