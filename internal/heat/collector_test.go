package heat

import (
	"strings"
	"testing"
	"time"

	"hopsfscl/internal/trace"
)

func TestCollectorTouchPathDepths(t *testing.T) {
	c := NewCollector(Config{Depths: 3}, nil)
	c.TouchPath(0, "/proj001/ds00/part-0001")
	c.TouchPath(0, "/proj001/ds00/part-0002")
	c.TouchPath(0, "/proj001/ds01/part-0001")
	c.TouchPath(0, "/proj002")

	rep := c.Snapshot(0, 10)
	if rank, row := rep.Rank("subtree depth 1", "/proj001"); rank != 1 || row.Count != 3 {
		t.Fatalf("depth-1 /proj001: rank %d count %d, want rank 1 count 3", rank, row.Count)
	}
	if rank, row := rep.Rank("subtree depth 1", "/proj002"); rank != 2 || row.Count != 1 {
		t.Fatalf("depth-1 /proj002: rank %d count %d, want rank 2 count 1", rank, row.Count)
	}
	if rank, row := rep.Rank("subtree depth 2", "/proj001/ds00"); rank != 1 || row.Count != 2 {
		t.Fatalf("depth-2 /proj001/ds00: rank %d count %d, want rank 1 count 2", rank, row.Count)
	}
	if rank, _ := rep.Rank("subtree depth 3", "/proj001/ds00/part-0001"); rank != 1 {
		t.Fatalf("depth-3 full path not ranked first (rank %d)", rank)
	}
}

func TestCollectorTouchPathIgnoresMalformed(t *testing.T) {
	c := NewCollector(Config{}, nil)
	c.TouchPath(0, "")
	c.TouchPath(0, "/")
	c.TouchPath(0, "relative/path")
	if got := c.Snapshot(0, 5).Families[0].Total; got != 0 {
		t.Fatalf("malformed paths counted: total %d", got)
	}
}

func TestCollectorPartitionKeysAndInodes(t *testing.T) {
	c := NewCollector(Config{}, nil)
	for i := 0; i < 4; i++ {
		c.TouchPartition(0, "inodes", 7)
	}
	c.TouchPartition(0, "inodes", 12)
	c.TouchPartition(0, "quotas", 7)
	c.TouchInode(0, 42)
	c.TouchInode(0, 42)
	c.TouchInode(0, 9)

	rep := c.Snapshot(0, 10)
	if rank, row := rep.Rank("partition", "inodes#p07"); rank != 1 || row.Count != 4 {
		t.Fatalf("inodes#p07: rank %d count %d, want rank 1 count 4", rank, row.Count)
	}
	if rank, row := rep.Rank("table", "inodes"); rank != 1 || row.Count != 5 {
		t.Fatalf("table inodes: rank %d count %d, want rank 1 count 5", rank, row.Count)
	}
	if rank, row := rep.Rank("inode", "inode:42"); rank != 1 || row.Count != 2 {
		t.Fatalf("inode:42: rank %d count %d, want rank 1 count 2", rank, row.Count)
	}
}

func TestCollectorPublishGauges(t *testing.T) {
	reg := trace.NewRegistry()
	c := NewCollector(Config{Depths: 1, TopN: 2}, reg)
	c.TouchPath(0, "/hot/a")
	c.TouchPath(0, "/hot/b")
	c.TouchPath(0, "/hot/c")
	c.TouchPath(0, "/cold/x")
	c.ObserveOp("stat", 0, time.Millisecond, false)
	c.Publish(0)

	if got := reg.Gauge("heat.subtree.d1.top1_share").Value(); got != 0.75 {
		t.Fatalf("heat.subtree.d1.top1_share = %v, want 0.75", got)
	}
	if got := reg.Gauge("heat.subtree.d1.topk_share").Value(); got != 1 {
		t.Fatalf("heat.subtree.d1.topk_share = %v, want 1", got)
	}
	if got := reg.Gauge("heat.op.top1_share").Value(); got != 1 {
		t.Fatalf("heat.op.top1_share = %v, want 1", got)
	}
}

func TestCollectorTouchAllocationFree(t *testing.T) {
	c := NewCollector(Config{}, nil)
	path := "/proj001/ds00/part-0001"
	c.TouchPath(0, path)
	c.TouchPartition(0, "inodes", 3)
	c.TouchInode(0, 42)
	if allocs := testing.AllocsPerRun(500, func() { c.TouchPath(time.Millisecond, path) }); allocs > 0 {
		t.Fatalf("TouchPath of tracked prefixes allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() { c.TouchPartition(time.Millisecond, "inodes", 3) }); allocs > 0 {
		t.Fatalf("TouchPartition of a cached key allocates %.1f objects/op, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(500, func() { c.TouchInode(time.Millisecond, 42) }); allocs > 0 {
		t.Fatalf("TouchInode of a tracked id allocates %.1f objects/op, want 0", allocs)
	}
}

func TestReportRenderAndCSV(t *testing.T) {
	c := NewCollector(Config{Depths: 1}, nil)
	c.TouchPath(0, "/hot/a")
	c.TouchPath(0, "/hot/b")
	c.TouchPath(0, "/cold/x")
	rep := c.Snapshot(0, 5)

	text := rep.Render()
	if !strings.Contains(text, "hottest subtree depth 1") || !strings.Contains(text, "/hot") {
		t.Fatalf("render missing expected content:\n%s", text)
	}
	var b strings.Builder
	if err := rep.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	csv := b.String()
	if !strings.HasPrefix(csv, "family,rank,key,touches,share,err\n") {
		t.Fatalf("csv header wrong:\n%s", csv)
	}
	if !strings.Contains(csv, "subtree depth 1,1,/hot,2,0.6667,0") {
		t.Fatalf("csv missing expected row:\n%s", csv)
	}
	// Same schedule twice must render byte-identically.
	c2 := NewCollector(Config{Depths: 1}, nil)
	c2.TouchPath(0, "/hot/a")
	c2.TouchPath(0, "/hot/b")
	c2.TouchPath(0, "/cold/x")
	if got := c2.Snapshot(0, 5).Render(); got != text {
		t.Fatalf("renders diverge:\n%s\n---\n%s", got, text)
	}
}
