// Package heat maintains deterministic top-k heavy-hitter sketches over
// the deployment's operation stream: which path subtrees, inodes, NDB
// tables, and partitions are hot right now. It is the data layer namespace
// sharding (ROADMAP item 2) consumes to pick partitions, and the answer to
// "which paths are burning the latency budget" that aggregate metrics
// cannot give.
//
// The sketch is Space-Saving (Metwally et al.): a fixed set of counters;
// a key not yet tracked replaces the minimum counter and inherits its
// count as the overestimate bound. Memory is bounded by the capacity
// regardless of key cardinality, and any key with true frequency above
// total/capacity is guaranteed to be tracked. Counts decay by halving on
// fixed virtual-time window boundaries, so rankings track the current load
// shape (a diurnal profile's morning hot set fades by evening) instead of
// accumulating forever.
//
// Everything is keyed to virtual time and uses deterministic tie-breaks,
// so a fixed-seed run produces a byte-identical ranking. Like slo, the
// package is a leaf over the standard library plus trace.
package heat

import (
	"cmp"
	"sync"
	"time"
)

// Counter is one tracked key in a sketch snapshot.
type Counter[K cmp.Ordered] struct {
	Key K
	// Count is the estimated (decayed) touch count. The true decayed count
	// lies in [Count-Err, Count].
	Count uint64
	// Err is the Space-Saving overestimate bound: the count the key
	// inherited when it displaced the previous minimum (0 for keys tracked
	// since their first touch in the current horizon).
	Err uint64
}

// entry is one live counter; entries form a min-heap ordered by
// (count asc, key asc) so the displacement victim is deterministic.
type entry[K cmp.Ordered] struct {
	key   K
	count uint64
	err   uint64
}

// TopK is a decayed Space-Saving sketch over keys of type K. All methods
// are safe for concurrent use and nil-receiver-safe, so instrumentation
// sites can call them unconditionally.
type TopK[K cmp.Ordered] struct {
	mu sync.Mutex
	// capacity bounds the tracked key set.
	capacity int
	// window is the decay half-life: on every window boundary crossing all
	// counts halve (0 disables decay).
	window time.Duration
	epoch  int64
	total  uint64
	// heap is the min-heap of live entries; index maps key -> heap slot.
	heap  []entry[K]
	index map[K]int
}

// NewTopK returns a sketch tracking at most capacity keys (default 64 for
// capacity <= 0), halving all counts every window of virtual time (0
// disables decay).
func NewTopK[K cmp.Ordered](capacity int, window time.Duration) *TopK[K] {
	if capacity <= 0 {
		capacity = 64
	}
	return &TopK[K]{
		capacity: capacity,
		window:   window,
		heap:     make([]entry[K], 0, capacity),
		index:    make(map[K]int, capacity),
	}
}

// less orders heap entries: smaller count first, smaller key breaking
// ties, so the Space-Saving victim is deterministic.
func (t *TopK[K]) less(a, b int) bool {
	if t.heap[a].count != t.heap[b].count {
		return t.heap[a].count < t.heap[b].count
	}
	return t.heap[a].key < t.heap[b].key
}

func (t *TopK[K]) swap(a, b int) {
	t.heap[a], t.heap[b] = t.heap[b], t.heap[a]
	t.index[t.heap[a].key] = a
	t.index[t.heap[b].key] = b
}

func (t *TopK[K]) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !t.less(i, parent) {
			return
		}
		t.swap(i, parent)
		i = parent
	}
}

func (t *TopK[K]) siftDown(i int) {
	n := len(t.heap)
	for {
		least := i
		if l := 2*i + 1; l < n && t.less(l, least) {
			least = l
		}
		if r := 2*i + 2; r < n && t.less(r, least) {
			least = r
		}
		if least == i {
			return
		}
		t.swap(i, least)
		i = least
	}
}

// roll applies the decay owed between the sketch's epoch and now: one
// halving per whole window crossed. Caller holds t.mu.
func (t *TopK[K]) roll(now time.Duration) {
	if t.window <= 0 {
		return
	}
	epoch := int64(now / t.window)
	if epoch <= t.epoch {
		return
	}
	steps := epoch - t.epoch
	t.epoch = epoch
	if steps >= 64 {
		// Everything decays to zero; clear without shifting.
		t.heap = t.heap[:0]
		clear(t.index)
		t.total = 0
		return
	}
	t.total >>= uint(steps)
	kept := t.heap[:0]
	for _, e := range t.heap {
		e.count >>= uint(steps)
		e.err >>= uint(steps)
		if e.count > 0 {
			kept = append(kept, e)
		}
	}
	t.heap = kept
	// Halving is monotone so the heap property survives the shift, but
	// dropped zero entries may have left holes: rebuild index and heapify.
	clear(t.index)
	for i := range t.heap {
		t.index[t.heap[i].key] = i
	}
	for i := len(t.heap)/2 - 1; i >= 0; i-- {
		t.siftDown(i)
	}
}

// Touch records weight touches of key at virtual instant now.
func (t *TopK[K]) Touch(now time.Duration, key K, weight uint64) {
	if t == nil || weight == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roll(now)
	t.total += weight
	if i, ok := t.index[key]; ok {
		t.heap[i].count += weight
		t.siftDown(i)
		return
	}
	if len(t.heap) < t.capacity {
		t.heap = append(t.heap, entry[K]{key: key, count: weight})
		t.index[key] = len(t.heap) - 1
		t.siftUp(len(t.heap) - 1)
		return
	}
	// Space-Saving displacement: the new key takes over the minimum
	// counter, inheriting its count as the overestimate bound.
	victim := t.heap[0]
	delete(t.index, victim.key)
	t.heap[0] = entry[K]{key: key, count: victim.count + weight, err: victim.count}
	t.index[key] = 0
	t.siftDown(0)
}

// Total returns the decayed total weight observed at virtual instant now.
func (t *TopK[K]) Total(now time.Duration) uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.roll(now)
	return t.total
}

// Len returns how many keys are currently tracked.
func (t *TopK[K]) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.heap)
}

// Top returns up to n tracked keys ranked by descending decayed count,
// with ascending key as the deterministic tie-break, as of virtual
// instant now.
func (t *TopK[K]) Top(now time.Duration, n int) []Counter[K] {
	if t == nil || n <= 0 {
		return nil
	}
	t.mu.Lock()
	t.roll(now)
	out := make([]Counter[K], 0, len(t.heap))
	for _, e := range t.heap {
		out = append(out, Counter[K]{Key: e.key, Count: e.count, Err: e.err})
	}
	t.mu.Unlock()
	sortCounters(out)
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// sortCounters orders by count desc, key asc — insertion sort over at most
// capacity entries keeps the package dependency-free of sort's interface
// allocations on this small fixed-size input.
func sortCounters[K cmp.Ordered](cs []Counter[K]) {
	for i := 1; i < len(cs); i++ {
		c := cs[i]
		j := i - 1
		for j >= 0 && (cs[j].Count < c.Count || (cs[j].Count == c.Count && cs[j].Key > c.Key)) {
			cs[j+1] = cs[j]
			j--
		}
		cs[j+1] = c
	}
}
