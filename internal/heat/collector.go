package heat

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"

	"hopsfscl/internal/trace"
)

// Config shapes a Collector.
type Config struct {
	// Depths is how many path-prefix levels get their own subtree sketch:
	// depth 1 tracks "/proj", depth 2 "/proj/ds", and so on (default 3 —
	// the evaluation namespace is three levels deep).
	Depths int
	// K is the per-sketch counter capacity (default 64): any key with true
	// frequency above total/K is guaranteed to be tracked.
	K int
	// Window is the decay half-life: all counts halve every Window of
	// virtual time (default 2s, matching the SLO sketch span scale).
	Window time.Duration
	// TopN is how many rows reports and the topk_share gauges cover
	// (default 10).
	TopN int
	// PublishEvery is the default gauge-refresh interval for background
	// publishers (default 50ms, matching the flight recorder).
	PublishEvery time.Duration
}

// DefaultConfig returns the evaluation heat-tracking parameters.
func DefaultConfig() Config {
	return Config{Depths: 3, K: 64, Window: 2 * time.Second, TopN: 10, PublishEvery: 50 * time.Millisecond}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Depths <= 0 {
		c.Depths = d.Depths
	}
	if c.K <= 0 {
		c.K = d.K
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.TopN <= 0 {
		c.TopN = d.TopN
	}
	if c.PublishEvery <= 0 {
		c.PublishEvery = d.PublishEvery
	}
	return c
}

// familyGauges caches the registry handles published for one sketch family.
type familyGauges struct {
	top1, topk *trace.Gauge
}

// Collector owns one sketch per heat dimension and is the single
// attachment point for the instrumented layers: the namenode feeds path
// and inode touches, ndb feeds table and partition touches, and the
// tracer's op observer feeds per-op-class touches. All touch methods are
// nil-receiver-safe and allocation-conscious — touching an already-tracked
// key allocates nothing, so heat stays inside the grid-point allocation
// ceiling.
type Collector struct {
	cfg Config

	// subtrees[d-1] tracks path prefixes of depth d.
	subtrees []*TopK[string]
	inodes   *TopK[uint64]
	tables   *TopK[string]
	parts    *TopK[string]
	ops      *TopK[string]
	// shards tracks per-shard routing balance. nil until a multi-shard
	// router enables it (EnableShardFamily), so unsharded deployments
	// publish and snapshot exactly the historical family set.
	shards *TopK[string]

	// mu guards the partition-key cache and gauge handles; the sketches
	// lock themselves.
	mu sync.Mutex
	// partKeys caches preformatted "table#pNN" keys so the per-access
	// partition touch never formats.
	partKeys map[string][]string

	reg     *trace.Registry
	gauges  map[string]*familyGauges
	lastPub time.Duration
}

// NewCollector builds a collector publishing heat.* gauges into reg (nil
// skips gauges; sketches still run).
func NewCollector(cfg Config, reg *trace.Registry) *Collector {
	cfg = cfg.withDefaults()
	c := &Collector{
		cfg:      cfg,
		inodes:   NewTopK[uint64](cfg.K, cfg.Window),
		tables:   NewTopK[string](cfg.K, cfg.Window),
		parts:    NewTopK[string](cfg.K, cfg.Window),
		ops:      NewTopK[string](cfg.K, cfg.Window),
		partKeys: make(map[string][]string),
		reg:      reg,
		gauges:   make(map[string]*familyGauges),
	}
	for d := 0; d < cfg.Depths; d++ {
		c.subtrees = append(c.subtrees, NewTopK[string](cfg.K, cfg.Window))
	}
	return c
}

// Config returns the collector's effective (defaulted) config.
func (c *Collector) Config() Config { return c.cfg }

// TouchPath attributes one operation to the path's enclosing subtrees:
// every prefix of up to Depths components gets one touch. Prefixes are
// substrings of path, so the touch shares the caller's string backing and
// allocates nothing on the tracked-key fast path.
func (c *Collector) TouchPath(now time.Duration, path string) {
	if c == nil || len(path) < 2 || path[0] != '/' {
		return
	}
	depth := 0
	for i := 1; i <= len(path) && depth < len(c.subtrees); i++ {
		if i < len(path) && path[i] != '/' {
			continue
		}
		if i > 1 && path[i-1] != '/' { // skip empty components
			c.subtrees[depth].Touch(now, path[:i], 1)
			depth++
		}
	}
}

// TouchInode attributes one row access to an inode.
func (c *Collector) TouchInode(now time.Duration, id uint64) {
	if c == nil {
		return
	}
	c.inodes.Touch(now, id, 1)
}

// TouchPartition attributes one row access to a table and its partition.
func (c *Collector) TouchPartition(now time.Duration, table string, index int) {
	if c == nil {
		return
	}
	c.tables.Touch(now, table, 1)
	c.parts.Touch(now, c.partKey(table, index), 1)
}

// partKey returns the cached "table#pNN" key, formatting the table's key
// set once on first contact.
func (c *Collector) partKey(table string, index int) string {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys := c.partKeys[table]
	for i := len(keys); i <= index; i++ {
		keys = append(keys, fmt.Sprintf("%s#p%02d", table, i))
	}
	c.partKeys[table] = keys
	return keys[index]
}

// EnableShardFamily adds the "shard" key family: one key per shard,
// touched by the router at every sub-transaction begin, so shard-balance
// skew ranks alongside tables and partitions in hotspot reports. The
// family stays disabled (absent from Publish and Snapshot) until a
// multi-shard router calls this.
func (c *Collector) EnableShardFamily() {
	if c == nil || c.shards != nil {
		return
	}
	c.shards = NewTopK[string](c.cfg.K, c.cfg.Window)
}

// TouchShard attributes one routed sub-transaction to a shard key. The
// caller passes a cached key string ("shard0", ...), so the touch
// allocates nothing; a no-op until EnableShardFamily.
func (c *Collector) TouchShard(now time.Duration, key string) {
	if c == nil || c.shards == nil {
		return
	}
	c.shards.Touch(now, key, 1)
}

// ObserveOp is a trace.OpObserver feeding the op-class sketch: heat rides
// the same hook the SLO engine consumes.
func (c *Collector) ObserveOp(op string, end, _ time.Duration, _ bool) {
	if c == nil {
		return
	}
	c.ops.Touch(end, op, 1)
}

// familyNames orders the published families deterministically; "shard"
// only exists on multi-shard deployments (EnableShardFamily).
var familyOrder = []string{"subtree", "inode", "table", "partition", "op", "shard"}

// Publish refreshes the heat.* gauges at virtual instant now:
// heat.<family>.top1_share and heat.<family>.topk_share per family (the
// subtree family is labeled per depth). A flight recorder keeping the
// "heat." prefix turns these into the heat timeline CSV.
func (c *Collector) Publish(now time.Duration) {
	if c == nil || c.reg == nil {
		return
	}
	c.mu.Lock()
	c.lastPub = now
	c.mu.Unlock()
	for d, sk := range c.subtrees {
		c.publishFamily("subtree.d"+strconv.Itoa(d+1), sk, now)
	}
	c.publishFamily("inode", c.inodes, now)
	c.publishFamily("table", c.tables, now)
	c.publishFamily("partition", c.parts, now)
	c.publishFamily("op", c.ops, now)
	if c.shards != nil {
		c.publishFamily("shard", c.shards, now)
	}
}

func (c *Collector) publishFamily(name string, sk sketchView, now time.Duration) {
	c.mu.Lock()
	g := c.gauges[name]
	if g == nil {
		g = &familyGauges{
			top1: c.reg.Gauge("heat." + name + ".top1_share"),
			topk: c.reg.Gauge("heat." + name + ".topk_share"),
		}
		c.gauges[name] = g
	}
	c.mu.Unlock()
	top1, topk := sk.shares(now, c.cfg.TopN)
	g.top1.Set(top1)
	g.topk.Set(topk)
}

// sketchView is the small query surface publishFamily and snapshots need,
// implemented by TopK over any key type.
type sketchView interface {
	shares(now time.Duration, n int) (top1, topk float64)
	rows(now time.Duration, n int) ([]Row, uint64, int)
}

// shares returns the decayed count share of the hottest key and of the
// hottest n keys.
func (t *TopK[K]) shares(now time.Duration, n int) (top1, topk float64) {
	top := t.Top(now, n)
	total := t.Total(now)
	if total == 0 || len(top) == 0 {
		return 0, 0
	}
	var sum uint64
	for _, c := range top {
		sum += c.Count
	}
	return float64(top[0].Count) / float64(total), float64(sum) / float64(total)
}

// rows renders the top-n keys as report rows.
func (t *TopK[K]) rows(now time.Duration, n int) ([]Row, uint64, int) {
	top := t.Top(now, n)
	total := t.Total(now)
	out := make([]Row, 0, len(top))
	for _, c := range top {
		share := 0.0
		if total > 0 {
			share = float64(c.Count) / float64(total)
		}
		out = append(out, Row{Key: keyString(c.Key), Count: c.Count, Err: c.Err, Share: share})
	}
	return out, total, t.Len()
}

func keyString(k any) string {
	switch v := k.(type) {
	case string:
		return v
	case uint64:
		return "inode:" + strconv.FormatUint(v, 10)
	default:
		return fmt.Sprint(v)
	}
}

// Row is one ranked key in a heat report.
type Row struct {
	Key string
	// Count is the decayed touch estimate; the true count lies in
	// [Count-Err, Count].
	Count uint64
	Err   uint64
	// Share is Count over the family's decayed total.
	Share float64
}

// Family is one sketch's ranking in a heat report.
type Family struct {
	// Name identifies the dimension: "subtree depth 2", "inode", "table",
	// "partition", "op".
	Name string
	// Total is the family's decayed touch total; Tracked is how many keys
	// the sketch currently holds.
	Total   uint64
	Tracked int
	Top     []Row
}

// Report is an immutable snapshot of every sketch's ranking at one
// virtual instant.
type Report struct {
	At       time.Duration
	Families []Family
}

// Snapshot captures the hottest keys of every family at virtual instant
// now, topN rows each (0 uses the configured TopN).
func (c *Collector) Snapshot(now time.Duration, topN int) *Report {
	if c == nil {
		return nil
	}
	if topN <= 0 {
		topN = c.cfg.TopN
	}
	rep := &Report{At: now}
	add := func(name string, sk sketchView) {
		top, total, tracked := sk.rows(now, topN)
		rep.Families = append(rep.Families, Family{Name: name, Total: total, Tracked: tracked, Top: top})
	}
	for d, sk := range c.subtrees {
		add("subtree depth "+strconv.Itoa(d+1), sk)
	}
	add("inode", c.inodes)
	add("table", c.tables)
	add("partition", c.parts)
	add("op", c.ops)
	if c.shards != nil {
		add("shard", c.shards)
	}
	return rep
}

// Rank returns the 1-based rank of key in the depth-d subtree family of
// the report (0 when untracked) and the row itself.
func (r *Report) Rank(family, key string) (int, Row) {
	if r == nil {
		return 0, Row{}
	}
	for _, f := range r.Families {
		if f.Name != family {
			continue
		}
		for i, row := range f.Top {
			if row.Key == key {
				return i + 1, row
			}
		}
	}
	return 0, Row{}
}

// Render formats the report as aligned text tables, one per family,
// deterministically.
func (r *Report) Render() string {
	if r == nil {
		return ""
	}
	var b strings.Builder
	for fi, f := range r.Families {
		if fi > 0 {
			b.WriteByte('\n')
		}
		fmt.Fprintf(&b, "hottest %s (decayed touches %d, %d keys tracked):\n", f.Name, f.Total, f.Tracked)
		if len(f.Top) == 0 {
			b.WriteString("  (no touches in window)\n")
			continue
		}
		width := 4
		for _, row := range f.Top {
			if len(row.Key) > width {
				width = len(row.Key)
			}
		}
		fmt.Fprintf(&b, "  %4s  %-*s  %10s  %7s  %6s\n", "rank", width, "key", "touches", "share", "±err")
		for i, row := range f.Top {
			fmt.Fprintf(&b, "  %4d  %-*s  %10d  %6.1f%%  %6d\n", i+1, width, row.Key, row.Count, row.Share*100, row.Err)
		}
	}
	return b.String()
}

// WriteCSV renders the report as deterministic CSV rows:
// family,rank,key,touches,share,err.
func (r *Report) WriteCSV(w io.Writer) error {
	if r == nil {
		return nil
	}
	var b strings.Builder
	b.WriteString("family,rank,key,touches,share,err\n")
	for _, f := range r.Families {
		for i, row := range f.Top {
			fmt.Fprintf(&b, "%s,%d,%s,%d,%.4f,%d\n", csvField(f.Name), i+1, csvField(row.Key), row.Count, row.Share, row.Err)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func csvField(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return "\"" + strings.ReplaceAll(s, "\"", "\"\"") + "\""
}
