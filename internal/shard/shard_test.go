package shard

import (
	"fmt"
	"testing"
	"time"

	"hopsfscl/internal/ndb"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// testRouter builds n independent NDB clusters on one simulated network
// and a router over them, mirroring how core.Build wires a sharded
// deployment.
func testRouter(t *testing.T, n int) (*sim.Env, *Router, *simnet.Node) {
	t.Helper()
	env := sim.New(7)
	t.Cleanup(env.Close)
	net := simnet.New(env, simnet.USWest1())
	zones := []simnet.ZoneID{1, 2, 3}
	clusters := make([]*ndb.Cluster, 0, n)
	for i := 0; i < n; i++ {
		cfg := ndb.DefaultConfig()
		cfg.DataNodes = 6
		cfg.Replication = 3
		cfg.PartitionsPerTable = 8
		if i > 0 {
			cfg.NamePrefix = fmt.Sprintf("s%d-", i)
		}
		data := ndb.SpreadPlacement(cfg.DataNodes, zones, 1000+100*i)
		mgmt := []ndb.Placement{
			{Zone: 1, Host: simnet.HostID(2000 + 10*i)},
			{Zone: 2, Host: simnet.HostID(2001 + 10*i)},
			{Zone: 3, Host: simnet.HostID(2002 + 10*i)},
		}
		c, err := ndb.New(env, net, cfg, data, mgmt)
		if err != nil {
			t.Fatal(err)
		}
		clusters = append(clusters, c)
	}
	r, err := NewRouter(clusters)
	if err != nil {
		t.Fatal(err)
	}
	client := net.NewNode("client", 1, 3000)
	return env, r, client
}

// inTxn runs fn in a routed transaction inside a sim process and fails the
// test on error.
func inTxn(t *testing.T, env *sim.Env, r *Router, client *simnet.Node, ts *TableSet, hint string,
	fn func(p *sim.Proc, tx *Txn) error) {
	t.Helper()
	var err error
	env.Spawn("txn", func(p *sim.Proc) {
		var tx *Txn
		tx, err = r.Begin(p, client, 1, ts, hint)
		if err != nil {
			return
		}
		err = fn(p, tx)
	})
	env.RunFor(10 * time.Second)
	if err != nil {
		t.Fatalf("txn failed: %v", err)
	}
}

// keysOnShard returns a partition key the router maps to the wanted shard.
func keyOnShard(t *testing.T, r *Router, want int) string {
	t.Helper()
	for i := 0; i < 10000; i++ {
		pk := fmt.Sprintf("pk%d", i)
		if r.ShardOfKey(pk) == want {
			return pk
		}
	}
	t.Fatalf("no probe key mapped to shard %d", want)
	return ""
}

// TestShardOfKeyDeterministicAndSpread checks the routing function: pure,
// stable, in bounds, and actually spreading keys over all shards.
func TestShardOfKeyDeterministicAndSpread(t *testing.T) {
	_, r, _ := testRouter(t, 4)
	hits := make([]int, 4)
	for i := 0; i < 4096; i++ {
		pk := fmt.Sprintf("dir-%d", i)
		s := r.ShardOfKey(pk)
		if s < 0 || s >= 4 {
			t.Fatalf("ShardOfKey(%q) = %d, out of range", pk, s)
		}
		if again := r.ShardOfKey(pk); again != s {
			t.Fatalf("ShardOfKey(%q) unstable: %d then %d", pk, s, again)
		}
		hits[s]++
	}
	for s, n := range hits {
		if n == 0 {
			t.Fatalf("shard %d received no keys out of 4096: %v", s, hits)
		}
	}
}

// TestSingleShardIdentity checks the n=1 fast path every unsharded golden
// depends on: all keys route to shard 0 and no intent machinery exists.
func TestSingleShardIdentity(t *testing.T) {
	_, r, _ := testRouter(t, 1)
	for i := 0; i < 64; i++ {
		if s := r.ShardOfKey(fmt.Sprintf("k%d", i)); s != 0 {
			t.Fatalf("single-shard router sent key to shard %d", s)
		}
	}
	r.EnableIntents()
	if got := r.PendingIntentCount(); got != 0 {
		t.Fatalf("single-shard router reports %d pending intents", got)
	}
	if r.Cluster(0).Table(intentTableName) != nil {
		t.Fatalf("single-shard router created an intent table")
	}
}

// TestPins checks subtree pinning: overrides beat the hash, out-of-range
// pins are rejected, and unpinning restores hashing.
func TestPins(t *testing.T) {
	_, r, _ := testRouter(t, 3)
	pk := keyOnShard(t, r, 2)
	if err := r.Pin(pk, 1); err != nil {
		t.Fatalf("pin: %v", err)
	}
	if s := r.ShardOfKey(pk); s != 1 {
		t.Fatalf("pinned key routed to shard %d, want 1", s)
	}
	if s, ok := r.Pinned(pk); !ok || s != 1 {
		t.Fatalf("Pinned = (%d, %v), want (1, true)", s, ok)
	}
	if err := r.Pin("x", 3); err == nil {
		t.Fatalf("out-of-range pin accepted")
	}
	if err := r.Pin("x", -1); err == nil {
		t.Fatalf("negative pin accepted")
	}
	r.Unpin(pk)
	if s := r.ShardOfKey(pk); s != 2 {
		t.Fatalf("unpinned key routed to shard %d, want the hash shard 2", s)
	}
}

// ident is a table value carrying an identity, like namenode.Inode does.
type ident uint64

func (v ident) IdentityID() uint64 { return uint64(v) }

// TestCrossShardCommit drives a transaction writing on two shards through
// the intent protocol and checks both rows land and no intent survives.
func TestCrossShardCommit(t *testing.T) {
	env, r, client := testRouter(t, 2)
	ts := r.NewTableSet("t", 256, ndb.TableOptions{ReadBackup: true})
	r.EnableIntents()
	pk0, pk1 := keyOnShard(t, r, 0), keyOnShard(t, r, 1)

	inTxn(t, env, r, client, ts, pk0, func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(ts, pk0, "a", ident(1)); err != nil {
			return err
		}
		if err := tx.Insert(ts, pk1, "b", ident(2)); err != nil {
			return err
		}
		return tx.Commit()
	})
	inTxn(t, env, r, client, ts, pk0, func(p *sim.Proc, tx *Txn) error {
		for _, probe := range []struct {
			pk, key string
			want    ident
		}{{pk0, "a", 1}, {pk1, "b", 2}} {
			v, ok, err := tx.ReadCommitted(ts, probe.pk, probe.key)
			if err != nil {
				return err
			}
			if !ok || v.(ident) != probe.want {
				return fmt.Errorf("row %s/%s = %v (ok=%v), want %d", probe.pk, probe.key, v, ok, probe.want)
			}
		}
		return tx.Commit()
	})
	if n := r.PendingIntentCount(); n != 0 {
		t.Fatalf("%d intents survived a successful cross-shard commit", n)
	}
}

// plantIntent writes an intent record directly into a shard's intent
// table, simulating a coordinator that died right after its first (intent-
// carrying) commit leg.
func plantIntent(t *testing.T, env *sim.Env, r *Router, client *simnet.Node, shard int, it *Intent) {
	t.Helper()
	c := r.Cluster(shard)
	tab := c.Table(intentTableName)
	var err error
	env.Spawn("plant", func(p *sim.Proc) {
		var tx *ndb.Txn
		tx, err = c.Begin(p, client, 1, tab, intentPartKey)
		if err != nil {
			return
		}
		if err = tx.Insert(tab, intentPartKey, intentKey(it.ID), it); err != nil {
			tx.Abort()
			return
		}
		err = tx.Commit()
	})
	env.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("planting intent: %v", err)
	}
}

func resolveAll(t *testing.T, env *sim.Env, r *Router, client *simnet.Node) int {
	t.Helper()
	var resolved int
	var err error
	env.Spawn("resolve", func(p *sim.Proc) {
		resolved, err = r.ResolvePendingIntents(p, client, 1)
	})
	env.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("resolving intents: %v", err)
	}
	return resolved
}

func readRow(t *testing.T, env *sim.Env, r *Router, client *simnet.Node, ts *TableSet, pk, key string) (ndb.Value, bool) {
	t.Helper()
	var val ndb.Value
	var ok bool
	var err error
	env.Spawn("read", func(p *sim.Proc) {
		var tx *Txn
		tx, err = r.Begin(p, client, 1, ts, pk)
		if err != nil {
			return
		}
		val, ok, err = tx.ReadCommitted(ts, pk, key)
		if err != nil {
			tx.Abort()
			return
		}
		err = tx.Commit()
	})
	env.RunFor(5 * time.Second)
	if err != nil {
		t.Fatalf("reading %s/%s: %v", pk, key, err)
	}
	return val, ok
}

// TestIntentReplayIdempotent checks the resolution paths of a stranded
// intent: roll-forward applies the missing leg, a second replay of the
// same intent is a guarded no-op, and a foreign occupant at the
// destination re-homes the moved value instead of overwriting it.
func TestIntentReplayIdempotent(t *testing.T) {
	env, r, client := testRouter(t, 2)
	ts := r.NewTableSet("t", 256, ndb.TableOptions{ReadBackup: true})
	r.EnableIntents()
	pk0, pk1 := keyOnShard(t, r, 0), keyOnShard(t, r, 1)

	// Roll-forward: the intent's leg inserts a row shard 1 never applied.
	it := &Intent{ID: 1, Op: "rename", Legs: []IntentLeg{{
		Shard: 1,
		Rows:  []IntentRow{{Table: "t", PartKey: pk1, Key: "moved", Val: ident(7), Guard: 7}},
	}}}
	plantIntent(t, env, r, client, 0, it)
	if got := r.PendingIntentCount(); got != 1 {
		t.Fatalf("pending intents = %d, want 1", got)
	}
	if got := resolveAll(t, env, r, client); got != 1 {
		t.Fatalf("resolved %d intents, want 1", got)
	}
	if v, ok := readRow(t, env, r, client, ts, pk1, "moved"); !ok || v.(ident) != 7 {
		t.Fatalf("roll-forward did not apply the leg: val=%v ok=%v", v, ok)
	}
	if got := r.PendingIntentCount(); got != 0 {
		t.Fatalf("intent record survived resolution")
	}

	// Idempotence: replaying the same intent (the leg already applied)
	// converges without touching the row.
	plantIntent(t, env, r, client, 0, it)
	if got := resolveAll(t, env, r, client); got != 1 {
		t.Fatalf("second replay resolved %d intents, want 1", got)
	}
	if v, ok := readRow(t, env, r, client, ts, pk1, "moved"); !ok || v.(ident) != 7 {
		t.Fatalf("idempotent replay disturbed the row: val=%v ok=%v", v, ok)
	}

	// Foreign occupant: the destination was legitimately reused by another
	// inode after the crash. The replay must not overwrite it; the moved
	// value re-homes at the move's source slot.
	inTxn(t, env, r, client, ts, pk1, func(p *sim.Proc, tx *Txn) error {
		if err := tx.Insert(ts, pk1, "taken", ident(99)); err != nil {
			return err
		}
		return tx.Commit()
	})
	it2 := &Intent{ID: 2, Op: "rename", Legs: []IntentLeg{{
		Shard: 1,
		Rows: []IntentRow{{
			Table: "t", PartKey: pk1, Key: "taken", Val: ident(8), Guard: 8,
			FallbackShard: 0, FallbackTable: "t", FallbackPartKey: pk0, FallbackKey: "origin",
		}},
	}}}
	plantIntent(t, env, r, client, 0, it2)
	if got := resolveAll(t, env, r, client); got != 1 {
		t.Fatalf("occupied replay resolved %d intents, want 1", got)
	}
	if v, ok := readRow(t, env, r, client, ts, pk1, "taken"); !ok || v.(ident) != 99 {
		t.Fatalf("replay overwrote a foreign occupant: val=%v ok=%v", v, ok)
	}
	if v, ok := readRow(t, env, r, client, ts, pk0, "origin"); !ok || v.(ident) != 8 {
		t.Fatalf("moved value was not re-homed at the source: val=%v ok=%v", v, ok)
	}
}
