package shard

import (
	"fmt"
	"strconv"

	"hopsfscl/internal/ndb"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// Cross-shard commit: an ordered two-cluster protocol with a durable
// intent record.
//
// A transaction that staged writes on two shards cannot commit atomically
// — the clusters share nothing. The router instead commits them in shard
// order, with the plan for every later shard persisted *inside the first
// commit*:
//
//  1. Read-only sides commit first. They only release locks; if one fails
//     nothing has been applied anywhere and the writers abort cleanly.
//  2. An Intent row — the staged rows of every writer after the first,
//     plus per-row identity guards — is staged into the first writer and
//     committed atomically with its rows. If this commit fails, no shard
//     has applied anything and no intent exists: a clean abort.
//  3. The remaining writers commit in shard order. From the instant step
//     2 committed, the operation is decided: if a later commit fails (a
//     shard crashed mid-commit), the durable intent is enough to finish
//     the job, so the caller gets an indeterminate error — never a false
//     "failed" for an operation that will complete.
//  4. On full success the intent row is deleted (best effort: a surviving
//     intent for an applied operation replays as a guarded no-op).
//
// Resolution (ResolvePendingIntents) replays surviving intents with
// exclusive locks and identity guards, so it is idempotent and safe
// against the window between failure and sweep: a delete leg only removes
// the row if it still holds the expected inode, and a put leg that finds
// a foreign occupant re-homes the moved inode at the move's source (or,
// as a last resort, under a "~dup" key) instead of overwriting or
// dropping it. The PR 2 history checker sees: acked cross-shard renames
// never lose the inode, and no schedule of crashes leaves it absent from
// both names or present under both.

// Identified lets the resolver compare a stored row value against the
// inode an intent was written about without importing the namenode's
// types; namenode.Inode implements it.
type Identified interface {
	IdentityID() uint64
}

func identityOf(v ndb.Value) (uint64, bool) {
	if id, ok := v.(Identified); ok {
		return id.IdentityID(), true
	}
	return 0, false
}

// IntentRow is one replayable row mutation of an intent leg.
type IntentRow struct {
	Table   string
	PartKey string
	Key     string
	Val     ndb.Value // nil for deletes
	Del     bool
	// Guard is the identity the replay checks: for deletes, the
	// pre-image's inode id (never delete a row that was since recreated
	// with a different inode); for puts, Val's own id (detect
	// already-applied). Zero means unguarded (rows without identity:
	// small-file data, quota updates — all keyed uniquely).
	Guard uint64
	// Fallback* name the move's source slot for guarded puts: when the
	// destination is occupied by a foreign inode at replay time, the
	// moved inode is re-homed there instead of being dropped or doubling
	// the destination.
	FallbackShard   int
	FallbackTable   string
	FallbackPartKey string
	FallbackKey     string
}

// IntentLeg is the replay plan for one shard of a cross-shard commit.
type IntentLeg struct {
	Shard int
	Rows  []IntentRow
}

// Intent is the durable record of a decided cross-shard commit: committed
// atomically with the first writer's rows, deleted after the last
// writer's, replayed by the sweeper in between.
type Intent struct {
	ID   uint64
	Op   string
	Legs []IntentLeg
}

const (
	intentTableName = "shard_intents"
	intentPartKey   = "i"
)

func intentKey(id uint64) string {
	return fmt.Sprintf("i/%016x", id)
}

// ErrIndeterminate reports a cross-shard commit whose intent is durable
// but whose later legs did not all acknowledge: the operation will
// complete (the sweeper replays the intent), the caller just cannot know
// yet. It unwraps to ndb.ErrNodeUnavailable so history checkers already
// classify it as indeterminate.
var ErrIndeterminate = fmt.Errorf("shard: cross-shard commit indeterminate, durable intent pending: %w", ndb.ErrNodeUnavailable)

// EnableIntents creates the per-shard durable intent tables. It must run
// at deployment build time, before transactions flow; single-shard
// routers skip it (no cross-shard path exists), keeping their table set
// — and every golden that renders it — unchanged.
func (r *Router) EnableIntents() {
	if r.n == 1 || r.intents != nil {
		return
	}
	r.intents = make([]*ndb.Table, r.n)
	for i, c := range r.clusters {
		r.intents[i] = c.CreateTable(intentTableName, 256, ndb.TableOptions{ReadBackup: true})
	}
}

// commitCross commits a multi-shard transaction via the intent protocol.
func (t *Txn) commitCross() error {
	r := t.r
	start := t.p.Now()
	var readers, writers []*ndb.Txn
	var writerShards []int
	for s, sub := range t.multi {
		if sub == nil {
			continue
		}
		if sub.HasWrites() {
			writers = append(writers, sub)
			writerShards = append(writerShards, s)
		} else {
			readers = append(readers, sub)
		}
	}
	// Step 1: read-only sides. Failures here abort everything cleanly.
	for _, sub := range readers {
		if err := sub.Commit(); err != nil {
			for _, w := range writers {
				w.Abort()
			}
			if r.obs != nil {
				r.obs.crossAborts.Add(1)
			}
			t.Annotate("shard.cross", "abort-read")
			return err
		}
	}
	switch len(writers) {
	case 0:
		return nil
	case 1:
		// One writing shard: single-cluster atomicity suffices even though
		// reads spanned shards.
		if r.obs != nil {
			r.obs.local.Add(1)
		}
		return writers[0].Commit()
	}
	if r.intents == nil {
		return fmt.Errorf("shard: cross-shard write without intent tables (router not fully attached)")
	}

	// Step 2: build the intent from the staged rows of every writer after
	// the first, guard deletes by their pre-image identity, and pair puts
	// with the delete of the same inode (the move's source) as fallback.
	r.intentSeq++
	it := &Intent{ID: r.intentSeq, Op: t.p.Span().OpName()}
	type slot struct {
		shard          int
		table, pk, key string
	}
	delOf := make(map[uint64]slot)
	var buildErr error
	for wi, w := range writers {
		s := writerShards[wi]
		w.StagedWrites(func(tab *ndb.Table, pk, key string, val ndb.Value, del bool) {
			if buildErr != nil {
				return
			}
			if del {
				cur, ok, err := w.ReadCommitted(tab, pk, key)
				if err != nil {
					buildErr = err
					return
				}
				if ok {
					if id, idOK := identityOf(cur); idOK {
						delOf[id] = slot{shard: s, table: tab.Name(), pk: pk, key: key}
					}
				}
			}
		})
	}
	if buildErr == nil {
		for wi, w := range writers {
			if wi == 0 {
				continue
			}
			leg := IntentLeg{Shard: writerShards[wi]}
			w.StagedWrites(func(tab *ndb.Table, pk, key string, val ndb.Value, del bool) {
				if buildErr != nil {
					return
				}
				row := IntentRow{Table: tab.Name(), PartKey: pk, Key: key, Val: val, Del: del}
				if del {
					cur, ok, err := w.ReadCommitted(tab, pk, key)
					if err != nil {
						buildErr = err
						return
					}
					if ok {
						if id, idOK := identityOf(cur); idOK {
							row.Guard = id
						}
					}
				} else if val != nil {
					if id, idOK := identityOf(val); idOK {
						row.Guard = id
						if src, found := delOf[id]; found {
							row.FallbackShard = src.shard
							row.FallbackTable = src.table
							row.FallbackPartKey = src.pk
							row.FallbackKey = src.key
						}
					}
				}
				leg.Rows = append(leg.Rows, row)
			})
			it.Legs = append(it.Legs, leg)
		}
	}
	intentShard := writerShards[0]
	if buildErr == nil {
		buildErr = writers[0].Insert(r.intents[intentShard], intentPartKey, intentKey(it.ID), it)
	}
	if buildErr != nil {
		for _, w := range writers {
			w.Abort()
		}
		if r.obs != nil {
			r.obs.crossAborts.Add(1)
		}
		t.Annotate("shard.cross", "abort-build")
		return buildErr
	}

	// Step 2, commit: rows of the first shard plus the intent, atomically.
	if err := writers[0].Commit(); err != nil {
		for _, w := range writers[1:] {
			w.Abort()
		}
		if r.obs != nil {
			r.obs.crossAborts.Add(1)
		}
		t.Annotate("shard.cross", "abort-first-leg")
		return err
	}

	// Step 3: the decision is durable; commit the remaining legs in shard
	// order.
	var legErr error
	for _, w := range writers[1:] {
		if err := w.Commit(); err != nil && legErr == nil {
			legErr = err
		}
	}
	if legErr == nil {
		// Step 4: best effort — a surviving intent replays as a no-op.
		_ = r.clearIntent(t.p, t.origin, t.domain, intentShard, it.ID)
		if r.obs != nil {
			r.obs.cross.Add(1)
			r.obs.crossTime.Observe(t.p.Now() - start)
		}
		t.Annotate("shard.cross", strconv.Itoa(len(writers)))
		return nil
	}
	// A later leg failed after the intent became durable. Try to finish
	// inline; if the shard is really down, hand the intent to the sweeper
	// and report indeterminate.
	if err := r.resolveIntent(t.p, t.origin, t.domain, intentShard, it); err == nil {
		if r.obs != nil {
			r.obs.cross.Add(1)
			r.obs.crossTime.Observe(t.p.Now() - start)
		}
		t.Annotate("shard.cross", "resolved-inline")
		return nil
	}
	if r.obs != nil {
		r.obs.crossIndet.Add(1)
	}
	t.Annotate("shard.cross", "indeterminate")
	return ErrIndeterminate
}

// resolveIntent replays every leg of it with guards, then deletes the
// record. Idempotent: replaying an already-applied (or half-applied)
// intent converges to the same state.
func (r *Router) resolveIntent(p *sim.Proc, origin *simnet.Node, domain simnet.ZoneID, intentShard int, it *Intent) error {
	type rehome struct {
		row IntentRow
	}
	var rehomes []rehome
	for _, leg := range it.Legs {
		c := r.clusters[leg.Shard]
		if len(leg.Rows) == 0 {
			continue
		}
		tx, err := c.Begin(p, origin, domain, c.Table(leg.Rows[0].Table), leg.Rows[0].PartKey)
		if err != nil {
			return err
		}
		for _, row := range leg.Rows {
			tab := c.Table(row.Table)
			cur, ok, err := tx.ReadLocked(tab, row.PartKey, row.Key, ndb.LockExclusive)
			if err != nil {
				tx.Abort()
				return err
			}
			switch {
			case row.Del:
				id, idOK := uint64(0), false
				if ok {
					id, idOK = identityOf(cur)
				}
				if ok && (row.Guard == 0 || (idOK && id == row.Guard)) {
					if err := tx.Delete(tab, row.PartKey, row.Key); err != nil {
						tx.Abort()
						return err
					}
				}
			case !ok:
				// Destination free: roll forward.
				if err := tx.Write(tab, row.PartKey, row.Key, row.Val, false); err != nil {
					tx.Abort()
					return err
				}
			default:
				id, idOK := identityOf(cur)
				if row.Guard != 0 && idOK && id == row.Guard {
					// Already applied (the leg committed, only the ack or the
					// intent cleanup was lost).
					continue
				}
				if row.Guard == 0 {
					// Unguarded put: plain replay.
					if err := tx.Write(tab, row.PartKey, row.Key, row.Val, false); err != nil {
						tx.Abort()
						return err
					}
					continue
				}
				// Foreign occupant: the destination was legitimately reused
				// after the failure. Don't overwrite it and don't drop the
				// moved inode — re-home it after this leg commits.
				rehomes = append(rehomes, rehome{row: row})
			}
		}
		if err := tx.Commit(); err != nil {
			return err
		}
	}
	for _, rh := range rehomes {
		if err := r.rehomeRow(p, origin, domain, rh.row); err != nil {
			return err
		}
		if r.obs != nil {
			r.obs.intentsRolledBack.Add(1)
		}
	}
	if err := r.clearIntent(p, origin, domain, intentShard, it.ID); err != nil {
		return err
	}
	if r.obs != nil {
		r.obs.intentsResolved.Add(1)
	}
	return nil
}

// rehomeRow re-inserts a moved value whose destination was taken: at the
// move's source slot when it is still free (the rename rolls back), else
// under a reserved "~dup" key beside the destination — never dropped,
// never doubled.
func (r *Router) rehomeRow(p *sim.Proc, origin *simnet.Node, domain simnet.ZoneID, row IntentRow) error {
	if row.FallbackTable != "" {
		c := r.clusters[row.FallbackShard]
		tab := c.Table(row.FallbackTable)
		tx, err := c.Begin(p, origin, domain, tab, row.FallbackPartKey)
		if err != nil {
			return err
		}
		_, ok, err := tx.ReadLocked(tab, row.FallbackPartKey, row.FallbackKey, ndb.LockExclusive)
		if err != nil {
			tx.Abort()
			return err
		}
		if !ok {
			if err := tx.Write(tab, row.FallbackPartKey, row.FallbackKey, row.Val, false); err != nil {
				tx.Abort()
				return err
			}
			return tx.Commit()
		}
		tx.Abort()
	}
	// Source taken too: park beside the destination under a key no path
	// lookup generates.
	s := r.ShardOfKey(row.PartKey)
	c := r.clusters[s]
	tab := c.Table(row.Table)
	tx, err := c.Begin(p, origin, domain, tab, row.PartKey)
	if err != nil {
		return err
	}
	key := row.Key + "~dup" + strconv.FormatUint(row.Guard, 10)
	if err := tx.Write(tab, row.PartKey, key, row.Val, false); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// clearIntent deletes one intent record in its own small transaction.
func (r *Router) clearIntent(p *sim.Proc, origin *simnet.Node, domain simnet.ZoneID, shard int, id uint64) error {
	c := r.clusters[shard]
	tx, err := c.Begin(p, origin, domain, r.intents[shard], intentPartKey)
	if err != nil {
		return err
	}
	if err := tx.Delete(r.intents[shard], intentPartKey, intentKey(id)); err != nil {
		tx.Abort()
		return err
	}
	return tx.Commit()
}

// ResolvePendingIntents sweeps every shard's intent table and replays
// surviving records in id order. The chaos engine runs it at quiesced
// checkpoints (it is the recovery procedure a real deployment would run
// on namenode failover); tests call it directly. Returns how many intents
// it resolved.
func (r *Router) ResolvePendingIntents(p *sim.Proc, origin *simnet.Node, domain simnet.ZoneID) (int, error) {
	if r.intents == nil {
		return 0, nil
	}
	resolved := 0
	for s := 0; s < r.n; s++ {
		c := r.clusters[s]
		tx, err := c.Begin(p, origin, domain, r.intents[s], intentPartKey)
		if err != nil {
			return resolved, err
		}
		kvs, err := tx.ScanPrefix(r.intents[s], intentPartKey, "i/")
		if err != nil {
			tx.Abort()
			return resolved, err
		}
		if err := tx.Commit(); err != nil {
			return resolved, err
		}
		for _, kv := range kvs {
			it, ok := kv.Val.(*Intent)
			if !ok {
				continue
			}
			if err := r.resolveIntent(p, origin, domain, s, it); err != nil {
				return resolved, err
			}
			resolved++
		}
	}
	return resolved, nil
}

// PendingIntentCount inspects the intent tables directly (outside the
// simulated network) and returns how many records survive — the
// auditor's cross-shard invariant: zero after a settled, swept
// checkpoint.
func (r *Router) PendingIntentCount() int {
	n := 0
	for _, tab := range r.intents {
		tab.ForEachCommitted(func(pk, key string, val ndb.Value) {
			n++
		})
	}
	return n
}
