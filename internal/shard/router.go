// Package shard routes the namespace across N independent NDB clusters.
//
// The single-cluster deployments of the paper saturate once the NDB
// datanodes run out of CPU (Figure 10): every metadata operation, however
// well batched, lands on the same replica chains. The router in this
// package is the way past that plateau (ROADMAP item 2): the namespace is
// hash-partitioned across N fully independent clusters — each with its own
// node groups, partitions, replica chains, and global checkpoints — and
// every transaction that touches a single shard runs on the existing
// single-cluster fast path, byte for byte. Only the rare operation that
// must mutate rows on two shards (a rename across the hash boundary) pays
// for coordination, through an ordered two-cluster commit with a durable
// intent record (intent.go).
//
// The routing function is deterministic and stateless: a row lives on the
// shard given by the FNV-64a hash of its partition key, modulo N. Because
// the namenode's partition key for an inode row is the parent directory's
// id (with root children scattered by name, mirroring partKeyOf), this is
// hash-of-parent routing — all children of a directory, and with them
// every list/scan and parent-child lock pair, stay on one shard. Subtree
// pinning overrides the hash per partition key: pinning a directory's key
// pins its children, and the namenode inherits the pin onto directories
// created below it, so whole subtrees can be kept on one shard.
//
// With one cluster the router degenerates to the identity: no hashing, no
// extra messages, no extra RNG draws — a Shards=1 deployment is
// indistinguishable from an unsharded one, which the golden suites pin.
package shard

import (
	"fmt"
	"strconv"
	"time"

	"hopsfscl/internal/heat"
	"hopsfscl/internal/ndb"
	"hopsfscl/internal/trace"
)

// Router maps partition keys to shards and owns the cross-shard commit
// machinery. It is built once per deployment, after the clusters and
// before the tables.
type Router struct {
	clusters []*ndb.Cluster
	n        int

	// pins overrides the hash per partition key (subtree pinning). nil
	// until the first Pin, so the routing fast path is one nil check.
	pins map[string]int

	heat      *heat.Collector
	shardKeys []string // cached "shard0".. keys for heat touches

	obs *routerObs

	// intents[s] is shard s's durable intent table (EnableIntents); nil
	// for single-shard routers, which never need the cross-shard path.
	intents []*ndb.Table
	// intentSeq numbers intent records; combined with the origin namenode
	// it is unique per deployment.
	intentSeq uint64

	// Free-lists for the per-call conversion buffers of the batched
	// wrappers (txn.go). The simulation kernel is cooperative, so rent and
	// return need no locking — the same discipline as the cluster's
	// scratch pools.
	freeWrites [][]ndb.BatchWrite
	freeGets   [][]ndb.BatchGet
	freeScans  [][]ndb.BatchScan
	freeIdx    [][]int
}

// routerObs caches the registry handles of the router's own metrics.
type routerObs struct {
	// local counts commits that never left one shard; cross counts
	// commits that ran the two-cluster intent protocol, and crossTime is
	// their end-to-end commit latency (the cross-shard rename cost the
	// shardsweep experiment reports separately).
	local     *trace.Counter
	cross     *trace.Counter
	crossTime *trace.Timing
	// crossAborts counts cross-shard commits that aborted cleanly before
	// the intent became durable; crossIndet counts the ones that returned
	// an indeterminate error with the intent left for the sweeper.
	crossAborts *trace.Counter
	crossIndet  *trace.Counter
	// intentsResolved / intentsRolledBack count sweeper outcomes: legs
	// replayed forward vs. undone (rename put blocked, value re-homed).
	intentsResolved   *trace.Counter
	intentsRolledBack *trace.Counter
}

// NewRouter builds a router over the given clusters, in shard order.
func NewRouter(clusters []*ndb.Cluster) (*Router, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("shard: router needs at least one cluster")
	}
	r := &Router{clusters: clusters, n: len(clusters)}
	r.shardKeys = make([]string, r.n)
	for i := range r.shardKeys {
		r.shardKeys[i] = "shard" + strconv.Itoa(i)
	}
	return r, nil
}

// Shards returns the shard count.
func (r *Router) Shards() int { return r.n }

// Cluster returns shard s's cluster.
func (r *Router) Cluster(s int) *ndb.Cluster { return r.clusters[s] }

// Clusters returns all clusters in shard order. Callers must not mutate
// the slice.
func (r *Router) Clusters() []*ndb.Cluster { return r.clusters }

// SetTracer registers the router's shard.* metrics.
func (r *Router) SetTracer(tr *trace.Tracer) {
	if tr == nil {
		return
	}
	reg := tr.Registry()
	r.obs = &routerObs{
		local:             reg.Counter("shard.txn.local"),
		cross:             reg.Counter("shard.txn.cross"),
		crossTime:         reg.Timing("shard.txn.cross_commit"),
		crossAborts:       reg.Counter("shard.txn.cross_aborts"),
		crossIndet:        reg.Counter("shard.txn.cross_indeterminate"),
		intentsResolved:   reg.Counter("shard.intents.resolved"),
		intentsRolledBack: reg.Counter("shard.intents.rolled_back"),
	}
}

// SetHeat attaches the deployment's heat collector: multi-shard routers
// feed the "shard" key family so balance skew shows up in hotspot reports
// next to tables and partitions. Single-shard routers leave the family
// untouched (and unpublished), keeping unsharded heat reports identical.
func (r *Router) SetHeat(h *heat.Collector) {
	r.heat = h
	if h != nil && r.n > 1 {
		h.EnableShardFamily()
	}
}

// touchShard attributes one sub-transaction begin to its shard's heat key.
func (r *Router) touchShard(now time.Duration, s int) {
	if r.heat != nil && r.n > 1 {
		r.heat.TouchShard(now, r.shardKeys[s])
	}
}

// fnv64 is the FNV-64a hash of s, inlined so routing allocates nothing.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// ShardOfKey returns the shard owning partition key pk: the pin override
// if one is set, else hash-of-key modulo the shard count.
func (r *Router) ShardOfKey(pk string) int {
	if r.n == 1 {
		return 0
	}
	if r.pins != nil {
		if s, ok := r.pins[pk]; ok {
			return s
		}
	}
	return int(fnv64(pk) % uint64(r.n))
}

// Pin overrides the hash for one partition key. Pinning a directory's
// partition key (its inode id) moves all its children — and every scan and
// lock against them — to the given shard; the namenode inherits pins onto
// directories created underneath, which makes the override subtree-deep.
// Pins must be installed before rows are written under the key: the router
// never migrates existing rows.
func (r *Router) Pin(pk string, s int) error {
	if s < 0 || s >= r.n {
		return fmt.Errorf("shard: pin %q to shard %d of %d", pk, s, r.n)
	}
	if r.pins == nil {
		r.pins = make(map[string]int)
	}
	r.pins[pk] = s
	return nil
}

// Unpin removes a pin override.
func (r *Router) Unpin(pk string) {
	delete(r.pins, pk)
}

// Pinned returns the pin override for pk, if any.
func (r *Router) Pinned(pk string) (int, bool) {
	s, ok := r.pins[pk]
	return s, ok
}

// TableSet is one logical table materialized on every shard. All routed
// access goes through a Txn; For/At expose the per-shard tables for
// direct-seeding and audits.
type TableSet struct {
	r    *Router
	tabs []*ndb.Table
}

// NewTableSet creates the table on every cluster and returns the set.
func (r *Router) NewTableSet(name string, rowSize int, opts ndb.TableOptions) *TableSet {
	tabs := make([]*ndb.Table, r.n)
	for i, c := range r.clusters {
		tabs[i] = c.CreateTable(name, rowSize, opts)
	}
	return &TableSet{r: r, tabs: tabs}
}

// Wrap adopts existing per-shard tables (one per cluster, in shard order)
// as a set — how the namenode re-homes tables created before the router
// was attached.
func (r *Router) Wrap(tabs []*ndb.Table) (*TableSet, error) {
	if len(tabs) != r.n {
		return nil, fmt.Errorf("shard: wrap %d tables across %d shards", len(tabs), r.n)
	}
	return &TableSet{r: r, tabs: tabs}, nil
}

// Router returns the set's router.
func (ts *TableSet) Router() *Router { return ts.r }

// Shard returns the shard owning partition key pk.
func (ts *TableSet) Shard(pk string) int { return ts.r.ShardOfKey(pk) }

// For returns the shard-local table owning partition key pk.
func (ts *TableSet) For(pk string) *ndb.Table { return ts.tabs[ts.r.ShardOfKey(pk)] }

// At returns shard s's table.
func (ts *TableSet) At(s int) *ndb.Table { return ts.tabs[s] }

// ForEachCommitted visits every committed row of the logical table, shard
// by shard in shard order (key-sorted within each shard) — the audit-path
// iteration, reading storage state directly.
func (ts *TableSet) ForEachCommitted(fn func(partKey, key string, val ndb.Value)) {
	for _, t := range ts.tabs {
		t.ForEachCommitted(fn)
	}
}

// shardOfTable maps a table pointer back to its shard index; batch items
// carry resolved *ndb.Table values, and the shard count is small enough
// that a linear scan beats any map.
func (r *Router) shardOfTable(t *ndb.Table) int {
	c := t.Cluster()
	for i, cl := range r.clusters {
		if cl == c {
			return i
		}
	}
	return 0
}

// Conversion-buffer pools. Buffers are rented for one wrapper call and
// returned before it exits, so steady-state batched operations allocate
// nothing beyond what the unsharded path did.

func (r *Router) rentWrites(n int) []ndb.BatchWrite {
	if k := len(r.freeWrites); k > 0 {
		b := r.freeWrites[k-1]
		r.freeWrites = r.freeWrites[:k-1]
		if cap(b) >= n {
			return b
		}
	}
	return make([]ndb.BatchWrite, 0, n+8)
}

func (r *Router) putWrites(b []ndb.BatchWrite) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = ndb.BatchWrite{} // drop value references
	}
	r.freeWrites = append(r.freeWrites, b[:0])
}

func (r *Router) rentGets(n int) []ndb.BatchGet {
	if k := len(r.freeGets); k > 0 {
		b := r.freeGets[k-1]
		r.freeGets = r.freeGets[:k-1]
		if cap(b) >= n {
			return b
		}
	}
	return make([]ndb.BatchGet, 0, n+8)
}

func (r *Router) putGets(b []ndb.BatchGet) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = ndb.BatchGet{}
	}
	r.freeGets = append(r.freeGets, b[:0])
}

func (r *Router) rentScans(n int) []ndb.BatchScan {
	if k := len(r.freeScans); k > 0 {
		b := r.freeScans[k-1]
		r.freeScans = r.freeScans[:k-1]
		if cap(b) >= n {
			return b
		}
	}
	return make([]ndb.BatchScan, 0, n+8)
}

func (r *Router) putScans(b []ndb.BatchScan) {
	b = b[:cap(b)]
	for i := range b {
		b[i] = ndb.BatchScan{}
	}
	r.freeScans = append(r.freeScans, b[:0])
}

func (r *Router) rentIdx(n int) []int {
	if k := len(r.freeIdx); k > 0 {
		b := r.freeIdx[k-1]
		r.freeIdx = r.freeIdx[:k-1]
		if cap(b) >= n {
			return b
		}
	}
	return make([]int, 0, n+8)
}

func (r *Router) putIdx(b []int) {
	r.freeIdx = append(r.freeIdx, b[:0])
}
