package shard

import (
	"sort"
	"time"

	"hopsfscl/internal/ndb"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/simnet"
)

// Txn is a routed transaction: a thin wrapper that lazily opens one
// ndb.Txn per shard the operation actually touches. The overwhelmingly
// common case — every row of the operation hashes to one shard — runs on
// exactly one sub-transaction, so the single-cluster fast path (WriteBatch
// trains, batched reads, commit coalescing) is untouched per shard, and a
// one-shard router forwards every call verbatim.
type Txn struct {
	r      *Router
	p      *sim.Proc
	origin *simnet.Node
	domain simnet.ZoneID

	// single is the only sub-transaction while the operation stays on one
	// shard; multi (indexed by shard, nil entries unopened) replaces it
	// the moment a second shard is touched.
	single      *ndb.Txn
	singleShard int
	multi       []*ndb.Txn
	done        bool
}

// Begin opens a routed transaction, eagerly starting the sub-transaction
// on the hint's shard — the same begin, against the same cluster, that an
// unsharded namenode would issue, so the message sequence of a one-shard
// deployment is unchanged.
func (r *Router) Begin(p *sim.Proc, origin *simnet.Node, domain simnet.ZoneID, hintTables *TableSet, hint string) (*Txn, error) {
	s := r.ShardOfKey(hint)
	sub, err := r.clusters[s].Begin(p, origin, domain, hintTables.tabs[s], hint)
	if err != nil {
		return nil, err
	}
	r.touchShard(p.Now(), s)
	return &Txn{r: r, p: p, origin: origin, domain: domain, single: sub, singleShard: s}, nil
}

// subFor returns the sub-transaction for shard s, beginning it on first
// touch (hinted by the partition key that caused the touch).
func (t *Txn) subFor(s int, ts *TableSet, pk string) (*ndb.Txn, error) {
	if t.multi == nil {
		if s == t.singleShard {
			return t.single, nil
		}
		t.multi = make([]*ndb.Txn, t.r.n)
		t.multi[t.singleShard] = t.single
	}
	if sub := t.multi[s]; sub != nil {
		return sub, nil
	}
	sub, err := t.r.clusters[s].Begin(t.p, t.origin, t.domain, ts.tabs[s], pk)
	if err != nil {
		return nil, err
	}
	t.multi[s] = sub
	t.r.touchShard(t.p.Now(), s)
	return sub, nil
}

// Now returns the executing process's current virtual time.
func (t *Txn) Now() time.Duration { return t.p.Now() }

// Annotate sets an attribute on the operation's current span.
func (t *Txn) Annotate(key, value string) {
	t.p.Span().SetAttr(key, value)
}

// ReadCommitted reads a row's committed value without locking.
func (t *Txn) ReadCommitted(ts *TableSet, partKey, key string) (ndb.Value, bool, error) {
	s := ts.r.ShardOfKey(partKey)
	sub, err := t.subFor(s, ts, partKey)
	if err != nil {
		return nil, false, err
	}
	return sub.ReadCommitted(ts.tabs[s], partKey, key)
}

// ReadLocked reads a row under a lock.
func (t *Txn) ReadLocked(ts *TableSet, partKey, key string, mode ndb.LockMode) (ndb.Value, bool, error) {
	s := ts.r.ShardOfKey(partKey)
	sub, err := t.subFor(s, ts, partKey)
	if err != nil {
		return nil, false, err
	}
	return sub.ReadLocked(ts.tabs[s], partKey, key, mode)
}

// Write stages an insert/update/delete under an exclusive lock.
func (t *Txn) Write(ts *TableSet, partKey, key string, val ndb.Value, del bool) error {
	s := ts.r.ShardOfKey(partKey)
	sub, err := t.subFor(s, ts, partKey)
	if err != nil {
		return err
	}
	return sub.Write(ts.tabs[s], partKey, key, val, del)
}

// Insert stages an insert/update.
func (t *Txn) Insert(ts *TableSet, partKey, key string, val ndb.Value) error {
	return t.Write(ts, partKey, key, val, false)
}

// Delete stages a delete.
func (t *Txn) Delete(ts *TableSet, partKey, key string) error {
	return t.Write(ts, partKey, key, nil, true)
}

// ScanPrefix scans one partition for keys with the prefix.
func (t *Txn) ScanPrefix(ts *TableSet, partKey, prefix string) ([]ndb.KV, error) {
	s := ts.r.ShardOfKey(partKey)
	sub, err := t.subFor(s, ts, partKey)
	if err != nil {
		return nil, err
	}
	return sub.ScanPrefix(ts.tabs[s], partKey, prefix)
}

// ScanTablePrefix scans every partition of the logical table — on every
// shard — for keys with the prefix. Multi-shard results are re-sorted by
// key so the merged order is independent of shard count.
func (t *Txn) ScanTablePrefix(ts *TableSet, prefix string) ([]ndb.KV, error) {
	if t.r.n == 1 {
		sub, err := t.subFor(0, ts, "")
		if err != nil {
			return nil, err
		}
		return sub.ScanTablePrefix(ts.tabs[0], prefix)
	}
	var out []ndb.KV
	for s := 0; s < t.r.n; s++ {
		sub, err := t.subFor(s, ts, "")
		if err != nil {
			return nil, err
		}
		kvs, err := sub.ScanTablePrefix(ts.tabs[s], prefix)
		if err != nil {
			return nil, err
		}
		out = append(out, kvs...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out, nil
}

// BatchGet names one row of a routed ReadBatch.
type BatchGet struct {
	Table   *TableSet
	PartKey string
	Key     string
}

// BatchScan names one prefix scan of a routed ScanBatch.
type BatchScan struct {
	Table   *TableSet
	PartKey string
	Prefix  string
}

// BatchWrite names one row of a routed WriteBatch.
type BatchWrite struct {
	Table   *TableSet
	PartKey string
	Key     string
	Val     ndb.Value
	Del     bool
}

// ReadBatch reads many rows in one batched fan-out per touched shard,
// returning values positionally. When all rows hash to one shard — every
// batched resolution of a path, since child rows share the parent's
// partition key — this is a single ndb.ReadBatch, unchanged.
func (t *Txn) ReadBatch(gets []BatchGet) ([]ndb.BatchVal, error) {
	if len(gets) == 0 {
		return nil, nil
	}
	r := t.r
	buf := r.rentGets(len(gets))
	first := gets[0].Table.r.ShardOfKey(gets[0].PartKey)
	same := true
	for i := range gets {
		s := gets[i].Table.r.ShardOfKey(gets[i].PartKey)
		if s != first {
			same = false
			break
		}
		buf = append(buf, ndb.BatchGet{Table: gets[i].Table.tabs[s], PartKey: gets[i].PartKey, Key: gets[i].Key})
	}
	if same {
		sub, err := t.subFor(first, gets[0].Table, gets[0].PartKey)
		if err != nil {
			r.putGets(buf)
			return nil, err
		}
		vals, err := sub.ReadBatch(buf)
		r.putGets(buf)
		return vals, err
	}
	r.putGets(buf)
	out := make([]ndb.BatchVal, len(gets))
	for s := 0; s < r.n; s++ {
		sbuf := r.rentGets(len(gets))
		idx := r.rentIdx(len(gets))
		for i := range gets {
			if gets[i].Table.r.ShardOfKey(gets[i].PartKey) != s {
				continue
			}
			sbuf = append(sbuf, ndb.BatchGet{Table: gets[i].Table.tabs[s], PartKey: gets[i].PartKey, Key: gets[i].Key})
			idx = append(idx, i)
		}
		if len(sbuf) == 0 {
			r.putGets(sbuf)
			r.putIdx(idx)
			continue
		}
		sub, err := t.subFor(s, gets[idx[0]].Table, gets[idx[0]].PartKey)
		if err == nil {
			var vals []ndb.BatchVal
			vals, err = sub.ReadBatch(sbuf)
			for j, i := range idx {
				out[i] = vals[j]
			}
		}
		r.putGets(sbuf)
		r.putIdx(idx)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// ScanBatch runs many prefix scans in one batched fan-out per touched
// shard, returning result sets positionally.
func (t *Txn) ScanBatch(scans []BatchScan) ([][]ndb.KV, error) {
	if len(scans) == 0 {
		return nil, nil
	}
	r := t.r
	buf := r.rentScans(len(scans))
	first := scans[0].Table.r.ShardOfKey(scans[0].PartKey)
	same := true
	for i := range scans {
		s := scans[i].Table.r.ShardOfKey(scans[i].PartKey)
		if s != first {
			same = false
			break
		}
		buf = append(buf, ndb.BatchScan{Table: scans[i].Table.tabs[s], PartKey: scans[i].PartKey, Prefix: scans[i].Prefix})
	}
	if same {
		sub, err := t.subFor(first, scans[0].Table, scans[0].PartKey)
		if err != nil {
			r.putScans(buf)
			return nil, err
		}
		kvs, err := sub.ScanBatch(buf)
		r.putScans(buf)
		return kvs, err
	}
	r.putScans(buf)
	out := make([][]ndb.KV, len(scans))
	for s := 0; s < r.n; s++ {
		sbuf := r.rentScans(len(scans))
		idx := r.rentIdx(len(scans))
		for i := range scans {
			if scans[i].Table.r.ShardOfKey(scans[i].PartKey) != s {
				continue
			}
			sbuf = append(sbuf, ndb.BatchScan{Table: scans[i].Table.tabs[s], PartKey: scans[i].PartKey, Prefix: scans[i].Prefix})
			idx = append(idx, i)
		}
		if len(sbuf) == 0 {
			r.putScans(sbuf)
			r.putIdx(idx)
			continue
		}
		sub, err := t.subFor(s, scans[idx[0]].Table, scans[idx[0]].PartKey)
		if err == nil {
			var kvs [][]ndb.KV
			kvs, err = sub.ScanBatch(sbuf)
			for j, i := range idx {
				out[i] = kvs[j]
			}
		}
		r.putScans(sbuf)
		r.putIdx(idx)
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// WriteBatch stages all mutations, grouped per shard. A batch that stays
// on one shard — every create, delete, and same-directory rename — is one
// ndb.WriteBatch, staged and committed exactly as before.
func (t *Txn) WriteBatch(items []BatchWrite) error {
	if len(items) == 0 {
		return nil
	}
	r := t.r
	buf := r.rentWrites(len(items))
	first := items[0].Table.r.ShardOfKey(items[0].PartKey)
	same := true
	for i := range items {
		s := items[i].Table.r.ShardOfKey(items[i].PartKey)
		if s != first {
			same = false
			break
		}
		buf = append(buf, ndb.BatchWrite{Table: items[i].Table.tabs[s], PartKey: items[i].PartKey, Key: items[i].Key, Val: items[i].Val, Del: items[i].Del})
	}
	if same {
		sub, err := t.subFor(first, items[0].Table, items[0].PartKey)
		if err != nil {
			r.putWrites(buf)
			return err
		}
		err = sub.WriteBatch(buf)
		r.putWrites(buf)
		return err
	}
	r.putWrites(buf)
	for s := 0; s < r.n; s++ {
		sbuf := r.rentWrites(len(items))
		firstIdx := -1
		for i := range items {
			if items[i].Table.r.ShardOfKey(items[i].PartKey) != s {
				continue
			}
			if firstIdx < 0 {
				firstIdx = i
			}
			sbuf = append(sbuf, ndb.BatchWrite{Table: items[i].Table.tabs[s], PartKey: items[i].PartKey, Key: items[i].Key, Val: items[i].Val, Del: items[i].Del})
		}
		if firstIdx < 0 {
			r.putWrites(sbuf)
			continue
		}
		sub, err := t.subFor(s, items[firstIdx].Table, items[firstIdx].PartKey)
		if err == nil {
			err = sub.WriteBatch(sbuf)
		}
		r.putWrites(sbuf)
		if err != nil {
			return err
		}
	}
	return nil
}

// Abort aborts every open sub-transaction.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	if t.multi == nil {
		t.single.Abort()
		return
	}
	for _, sub := range t.multi {
		if sub != nil {
			sub.Abort()
		}
	}
}

// Commit commits the routed transaction. One touched shard — the fast
// path — is exactly one single-cluster commit. Several touched shards run
// the ordered intent protocol in intent.go.
func (t *Txn) Commit() error {
	if t.done {
		return ndb.ErrAborted
	}
	t.done = true
	if t.multi == nil {
		if t.r.obs != nil {
			t.r.obs.local.Add(1)
		}
		return t.single.Commit()
	}
	return t.commitCross()
}
