// Command hopsbench regenerates the tables and figures of "Distributed
// Hierarchical File Systems strike back in the Cloud" (ICDCS 2020) against
// this repository's HopsFS-CL reproduction.
//
// Usage:
//
//	hopsbench [flags] <experiment>...
//	hopsbench list
//	hopsbench all
//
// Experiments: table1 table2 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12
// fig13 fig14 pathdepth writefan failures chaos autoscale ablations
// phases kernel hotspot shardsweep. "chaos" runs the seeded random
// fault-campaign sweep
// (deterministic per seed) with cross-layer invariant auditing; "failures"
// runs the §V-F scripted drills on the same engine; "pathdepth" measures
// stat latency vs path depth with optimistic batched resolution against
// the serial per-component walk; "writefan" measures multi-row
// write-transaction latency and wire footprint against rows per
// transaction, with the batched write path and node-group-coalesced commit
// trains (ndb.batch_write.* and ndb.commit.trains /
// ndb.commit.rows_per_train counters) against the serial one-chain-per-row
// protocol, including a where-the-time-went critical-path table per point;
// "autoscale" drives a compressed diurnal week against the elastic
// metadata tier (online commission/drain under the autoscale controller,
// audited at every transition) and against static-min and static-peak
// provisioning, checking the acceptance inequalities inline; "kernel" is
// the bench of the bench — it measures the simulation engine itself
// (per-primitive wall cost and steady-state allocations, plus the engine
// overhead of one full grid point in wall-ns per virtual millisecond and
// allocations per virtual op), the numbers whose regression gate lives in
// the CI kernel job and whose trajectory is recorded in BENCH_8.json;
// "hotspot" drives a planted skewed workload with the namespace heat
// sketches and tail-based exemplar capture enabled, checks that the
// planted subtrees rank first at every depth and that every p99-breaching
// op class pinned a breach exemplar, and renders the slowest exemplar
// through the critical-path profiler; "shardsweep" holds the offered load
// fixed and sweeps the number of independent NDB clusters the namespace
// is hash-sharded across (Options.Shards), checking the 1.8x
// 4-vs-1-shard scaling floor inline and reporting the cross-shard rename
// path (ordered two-cluster commits with durable intents) separately
// from the shard-local fast path — the run recorded in BENCH_10.json.
//
// When any measured window evicted spans from the profiling ring, a
// per-cell "spans dropped from the profiling sink" warning is printed to
// stderr (the count is also in the JSON report as sink_dropped): profiler
// attribution and exemplars then cover only a suffix of the run.
//
// Flags:
//
//	-full     run the paper's complete server-count grid (slower)
//	-seed N   simulation seed (default 1)
//	-clients N  closed-loop clients per metadata server (default 64)
//	-json FILE  write every measured grid cell (setup x server count:
//	            throughput, latency percentiles, CPU, cross-zone rate) plus
//	            per-point SLO summaries and the autoscale mode comparison as
//	            a deterministic JSON report — the machine-readable companion
//	            to the text tables (see BENCH_7.json for the recorded run)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"hopsfscl/internal/bench"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hopsbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hopsbench", flag.ContinueOnError)
	full := fs.Bool("full", false, "run the paper's complete server-count grid")
	seed := fs.Int64("seed", 1, "simulation seed")
	clients := fs.Int("clients", 0, "closed-loop clients per metadata server (0 = default)")
	jsonOut := fs.String("json", "", "write measured grid cells as a machine-readable JSON report to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ids := fs.Args()
	if len(ids) == 0 {
		usage()
		return fmt.Errorf("no experiment given")
	}
	if len(ids) == 1 && ids[0] == "list" {
		usage()
		return nil
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = nil
		for _, e := range bench.Experiments {
			ids = append(ids, e.ID)
		}
	}
	opts := bench.ExpOptions{Full: *full, Seed: *seed, ClientsPerServer: *clients, SLO: *jsonOut != ""}
	for _, id := range ids {
		exp, ok := bench.ExperimentByID(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try: hopsbench list)", id)
		}
		fmt.Printf("=== %s — %s ===\n", exp.ID, exp.Title)
		t0 := time.Now()
		out, err := exp.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", exp.ID, err)
		}
		fmt.Println(out)
		fmt.Printf("(%s completed in %s)\n\n", exp.ID, time.Since(t0).Round(time.Millisecond))
	}
	for _, w := range bench.SinkDropWarnings() {
		fmt.Fprintln(os.Stderr, "warning:", w)
	}
	if *jsonOut != "" {
		cmd := "hopsbench " + strings.Join(args, " ")
		if err := bench.WriteGridJSON(*jsonOut, cmd, ids); err != nil {
			return fmt.Errorf("write %s: %w", *jsonOut, err)
		}
		fmt.Printf("wrote grid report to %s\n", *jsonOut)
	}
	return nil
}

func usage() {
	fmt.Println("hopsbench — regenerate the paper's tables and figures")
	fmt.Println("\nexperiments:")
	for _, e := range bench.Experiments {
		fmt.Printf("  %-9s %s\n", e.ID, e.Title)
	}
	fmt.Println("\nusage: hopsbench [-full] [-seed N] [-clients N] [-json FILE] <experiment>... | all | list")
}
