package main

import "testing"

func TestRunRejectsBadInput(t *testing.T) {
	if err := run(nil); err == nil {
		t.Fatal("no arguments accepted")
	}
	if err := run([]string{"fig99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if err := run([]string{"-bogus", "fig5"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunListAndQuickExperiment(t *testing.T) {
	if err := run([]string{"list"}); err != nil {
		t.Fatal(err)
	}
	// table1/table2 are cheap end-to-end smoke tests of the CLI path.
	if err := run([]string{"table1", "table2"}); err != nil {
		t.Fatal(err)
	}
}
