// Command hopstrace records and replays metadata operation traces — the
// methodology behind the paper's use of Spotify's operational trace.
//
// Usage:
//
//	hopstrace gen [-ops N] [-seed S] [-out file]
//	    Generate a Spotify-mix trace over the evaluation namespace and
//	    write it (one operation per line) to the file or stdout.
//
//	hopstrace replay [-setup name] [-seed S] [-in file] [-trace] [-deadline D]
//	    Replay a trace file against a deployment and report virtual
//	    throughput, latency, and cross-AZ traffic. With -trace, capture
//	    detailed spans and print the 2PC phase breakdown plus the slowest
//	    operations as flame-style span trees.
//
// The trace format is plain text: "<op> <path> [<dst>]", e.g.
//
//	mkdir /proj001/dsNew
//	createFile /proj001/ds00/part-00042
//	rename /a/b /c/d
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hopsfscl/internal/bench"
	"hopsfscl/internal/core"
	"hopsfscl/internal/metrics"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hopstrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: hopstrace gen|replay [flags]")
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], stdout)
	case "replay":
		return runReplay(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want gen or replay)", args[0])
	}
}

func runGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	ops := fs.Int("ops", 10000, "operations to generate")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Drive the Spotify-mix generator against a recorder over a no-op FS:
	// the recorder captures exactly the operations a benchmark run issues.
	// Match the namespace a deployment built with the same seed will be
	// seeded with, so generated paths resolve on replay.
	ns := workload.BuildNamespace(workload.DefaultNamespace(), core.NamespaceSeed(*seed))
	rec := workload.NewRecorder(nopFS{})
	gen := workload.NewGenerator(ns, workload.SpotifyMix, *seed)
	env := sim.New(*seed)
	defer env.Close()
	env.Spawn("gen", func(p *sim.Proc) {
		for i := 0; i < *ops; i++ {
			_, _ = gen.Step(p, rec)
		}
	})
	env.Run()

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTrace(w, rec.Trace()); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %d operations to %s\n", len(rec.Trace()), *out)
	}
	return nil
}

func runReplay(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	setupName := fs.String("setup", "HopsFS-CL (3,3)", "deployment setup")
	seed := fs.Int64("seed", 1, "simulation seed")
	in := fs.String("in", "", "trace file (default stdin)")
	servers := fs.Int("servers", 6, "metadata servers")
	deadline := fs.Duration("deadline", 1000*time.Second, "virtual-time budget for the replay")
	withTrace := fs.Bool("trace", false, "capture detailed spans; print phase breakdown and slowest operations")
	slowest := fs.Int("slowest", 10, "slowest spans to print with -trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	trace, err := workload.ReadTrace(r)
	if err != nil {
		return err
	}
	setup, ok := core.SetupByName(*setupName)
	if !ok {
		return fmt.Errorf("unknown setup %q", *setupName)
	}
	opts := core.DefaultOptions(setup)
	opts.MetadataServers = *servers
	opts.ClientsPerServer = 1 // replay is sequential per client below
	opts.Seed = *seed
	d, err := core.Build(opts)
	if err != nil {
		return err
	}
	defer d.Close()
	sink := d.Tracer.Sink()
	if *withTrace {
		sink = d.EnableTracing(len(trace))
	}

	var (
		errs    int
		elapsed time.Duration
	)
	done := false
	d.Env.Spawn("replay", func(p *sim.Proc) {
		t0 := p.Now()
		errs = workload.Replay(p, d.Clients[0], trace)
		p.Flush()
		elapsed = p.Now() - t0
		done = true
	})
	for !done && d.Env.Now() < *deadline {
		step := 100 * time.Millisecond
		if rem := *deadline - d.Env.Now(); rem < step {
			step = rem
		}
		d.Env.RunFor(step)
	}
	if !done {
		return fmt.Errorf("replay did not complete within -deadline %v of virtual time", *deadline)
	}
	rate := float64(len(trace)) / elapsed.Seconds()
	fmt.Fprintf(stdout, "replayed %d operations on %s in %v (virtual)\n", len(trace), setup.Name, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "sequential throughput: %s ops/s   errors: %d\n", metrics.FormatOps(rate), errs)
	fmt.Fprintf(stdout, "cross-AZ traffic: %.2f MB\n", float64(d.Net.CrossZoneBytes())/1e6)
	// Mirror hopsbench: note the bench package is the place for load tests.
	fmt.Fprintln(stdout, "(replay is sequential; use hopsbench for closed-loop load)")

	if *withTrace {
		samples := d.Registry.Snapshot()
		fmt.Fprintf(stdout, "\ntransaction phase latency:\n%s", bench.RenderPhaseTable(samples))
		fmt.Fprintf(stdout, "\ncross-AZ bytes per operation type:\n%s", bench.RenderCrossAZTable(samples))
		fmt.Fprintf(stdout, "\nslowest %d operations (of %d traced):\n", *slowest, sink.Total())
		for _, sp := range sink.Slowest(*slowest) {
			fmt.Fprintln(stdout, sp.Render())
		}
	}
	return nil
}

// nopFS satisfies workload.FS with no-ops so a trace can be generated
// without a live cluster.
type nopFS struct{}

var _ workload.FS = nopFS{}

func (nopFS) Mkdir(*sim.Proc, string) error          { return nil }
func (nopFS) Create(*sim.Proc, string) error         { return nil }
func (nopFS) Stat(*sim.Proc, string) error           { return nil }
func (nopFS) Read(*sim.Proc, string) error           { return nil }
func (nopFS) List(*sim.Proc, string) error           { return nil }
func (nopFS) Delete(*sim.Proc, string) error         { return nil }
func (nopFS) Rename(*sim.Proc, string, string) error { return nil }
func (nopFS) SetPermission(*sim.Proc, string) error  { return nil }
