// Command hopstrace records, replays, and profiles metadata operation
// traces — the methodology behind the paper's use of Spotify's operational
// trace, extended with critical-path profiling.
//
// Usage:
//
//	hopstrace gen [-ops N] [-seed S] [-out file]
//	    Generate a Spotify-mix trace over the evaluation namespace and
//	    write it (one operation per line) to the file or stdout.
//
//	hopstrace replay [-setup name] [-seed S] [-in file] [-trace] [-deadline D]
//	    Replay a trace file against a deployment and report virtual
//	    throughput, latency, and cross-AZ traffic. With -trace, capture
//	    detailed spans and print the 2PC phase breakdown plus the slowest
//	    operations as flame-style span trees. Multi-row metadata writes go
//	    through the batched write path and commit as node-group-coalesced
//	    trains; the ndb.batch_write.* and ndb.commit.trains /
//	    ndb.commit.rows_per_train registry counters report how rows packed.
//
//	hopstrace profile [-setup name] [-seed S] [-ops N] [-clients N] [-format text|folded|chrome] [-out file]
//	    Generate and replay a trace with concurrent clients and detailed
//	    spans, then report where the time went: a per-op critical-path
//	    attribution table (lock wait / 2PC phases / hop classes / compute)
//	    plus the lock-contention ledger (text), folded flamegraph stacks
//	    (folded), or Chrome Trace Event JSON for chrome://tracing and
//	    Perfetto (chrome).
//
//	hopstrace timeline [-setup name] [-seed S] [-ops N] [-interval D] [-out file]
//	    Same replay, sampled by the flight recorder: a CSV time series of
//	    the selected metrics (per-AZ link traffic, lock waits, op rates)
//	    over virtual time.
//
//	hopstrace hotspots [-setup name] [-seed S] [-ops N] [-clients N] [-shards N] [-format text|csv] [-exemplars] [-out file]
//	    Same replay with the namespace heat sketches attached: decayed
//	    Space-Saving top-k rankings of the hottest subtrees (per depth),
//	    inodes, NDB tables, partitions, and op types, as a rendered report
//	    (text) or machine-readable rows (csv). With -shards > 1 the
//	    namespace is hash-sharded across that many NDB clusters and the
//	    report gains the per-shard routing-balance family. With -exemplars,
//	    also pin
//	    tail exemplars — full span trees of operations that breached their
//	    p99 objective, completed while a burn alert fired, or were the
//	    slowest of their window — and render them through the critical-path
//	    profiler.
//
//	hopstrace autoscale [-seed S] [-profile file] [-out file]
//	    Run the elastic metadata tier under a shaped diurnal load: paced
//	    clients follow the load profile (see internal/loadshape; -profile
//	    reads a declarative profile file, default loadshape.DefaultProfile
//	    over a compressed week) while the autoscale controller commissions
//	    and drains namenodes against the live SLO gauges. Prints the
//	    scale-event log and run summary; -out writes the flight-recorder
//	    timeline (offered load, serving servers, rolling p99) as CSV.
//
//	hopstrace slo [-setup name] [-seed S] [-spec file] [-schedule file] [-faults N] [-len D] [-out file]
//	    Run a seeded chaos campaign with the live SLO engine attached and
//	    render the alert/health timeline: burn-rate alerts
//	    (fast-burn/slow-burn pairs over the spec's objectives), component
//	    and cluster health transitions, per-fault time-to-detect alongside
//	    MTTR, and the closing rolling latency summaries. The default
//	    schedule injects the three detection classes (datanode death, zone
//	    partition, degraded link); -schedule replays an explicit schedule
//	    file and -faults N generates a random campaign instead. -spec reads
//	    a declarative SLO spec (see internal/slo.ParseSpec); the default is
//	    slo.DefaultSpec.
//
// The trace format is plain text: "<op> <path> [<dst>]", e.g.
//
//	mkdir /proj001/dsNew
//	createFile /proj001/ds00/part-00042
//	rename /a/b /c/d
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"hopsfscl/internal/autoscale"
	"hopsfscl/internal/bench"
	"hopsfscl/internal/chaos"
	"hopsfscl/internal/core"
	"hopsfscl/internal/heat"
	"hopsfscl/internal/loadshape"
	"hopsfscl/internal/metrics"
	"hopsfscl/internal/profile"
	"hopsfscl/internal/sim"
	"hopsfscl/internal/slo"
	"hopsfscl/internal/trace"
	"hopsfscl/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "hopstrace:", err)
		os.Exit(1)
	}
}

// subcommands lists every hopstrace subcommand with a one-line
// description; usage and nearest-match suggestions derive from it so the
// help text cannot drift from the dispatch table below.
var subcommands = []struct{ name, brief string }{
	{"gen", "generate a Spotify-mix trace over the evaluation namespace"},
	{"replay", "replay a trace file and report throughput, latency, and cross-AZ traffic"},
	{"profile", "replay with detailed spans and report critical-path attribution"},
	{"timeline", "replay under the flight recorder and emit a metrics CSV time series"},
	{"hotspots", "replay with namespace heat sketches and report the hottest subtrees, tables, and partitions"},
	{"autoscale", "drive the elastic metadata tier through a shaped diurnal load"},
	{"slo", "run a seeded chaos campaign under the live SLO engine and render the alert timeline"},
}

func usageText() string {
	var b strings.Builder
	b.WriteString("usage: hopstrace <subcommand> [flags]\n\nsubcommands:\n")
	for _, sc := range subcommands {
		fmt.Fprintf(&b, "  %-9s %s\n", sc.name, sc.brief)
	}
	b.WriteString("\nrun `hopstrace <subcommand> -h` for the subcommand's flags")
	return b.String()
}

// nearestSubcommand returns the subcommand closest to name by edit
// distance, or "" when nothing is plausibly close.
func nearestSubcommand(name string) string {
	best, bestDist := "", 3 // suggest only within edit distance 2
	for _, sc := range subcommands {
		if d := editDistance(name, sc.name); d < bestDist {
			best, bestDist = sc.name, d
		}
	}
	return best
}

// editDistance is the Levenshtein distance between a and b.
func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

func run(args []string, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("%s", usageText())
	}
	switch args[0] {
	case "gen":
		return runGen(args[1:], stdout)
	case "replay":
		return runReplay(args[1:], stdout)
	case "profile":
		return runProfile(args[1:], stdout)
	case "timeline":
		return runTimeline(args[1:], stdout)
	case "hotspots":
		return runHotspots(args[1:], stdout)
	case "autoscale":
		return runAutoscale(args[1:], stdout)
	case "slo":
		return runSLO(args[1:], stdout)
	default:
		if sug := nearestSubcommand(args[0]); sug != "" {
			return fmt.Errorf("unknown subcommand %q (did you mean %q?)\n%s", args[0], sug, usageText())
		}
		return fmt.Errorf("unknown subcommand %q\n%s", args[0], usageText())
	}
}

// genTrace generates n Spotify-mix operations with the given seed over the
// evaluation namespace — matching the namespace a deployment built with the
// same seed is seeded with, so generated paths resolve on replay.
func genTrace(n int, seed int64) []workload.TraceOp {
	ns := workload.BuildNamespace(workload.DefaultNamespace(), core.NamespaceSeed(seed))
	rec := workload.NewRecorder(nopFS{})
	gen := workload.NewGenerator(ns, workload.SpotifyMix, seed)
	env := sim.New(seed)
	defer env.Close()
	env.Spawn("gen", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			_, _ = gen.Step(p, rec)
		}
	})
	env.Run()
	return rec.Trace()
}

func runGen(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gen", flag.ContinueOnError)
	ops := fs.Int("ops", 10000, "operations to generate")
	seed := fs.Int64("seed", 1, "generator seed")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	// Drive the Spotify-mix generator against a recorder over a no-op FS:
	// the recorder captures exactly the operations a benchmark run issues.
	trace := genTrace(*ops, *seed)

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := workload.WriteTrace(w, trace); err != nil {
		return err
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %d operations to %s\n", len(trace), *out)
	}
	return nil
}

func runReplay(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	setupName := fs.String("setup", "HopsFS-CL (3,3)", "deployment setup")
	seed := fs.Int64("seed", 1, "simulation seed")
	in := fs.String("in", "", "trace file (default stdin)")
	servers := fs.Int("servers", 6, "metadata servers")
	deadline := fs.Duration("deadline", 1000*time.Second, "virtual-time budget for the replay")
	withTrace := fs.Bool("trace", false, "capture detailed spans; print phase breakdown and slowest operations")
	slowest := fs.Int("slowest", 10, "slowest spans to print with -trace")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	trace, err := workload.ReadTrace(r)
	if err != nil {
		return err
	}
	setup, ok := core.SetupByName(*setupName)
	if !ok {
		return fmt.Errorf("unknown setup %q", *setupName)
	}
	opts := core.DefaultOptions(setup)
	opts.MetadataServers = *servers
	opts.ClientsPerServer = 1 // replay is sequential per client below
	opts.Seed = *seed
	d, err := core.Build(opts)
	if err != nil {
		return err
	}
	defer d.Close()
	sink := d.Tracer.Sink()
	if *withTrace {
		sink = d.EnableTracing(len(trace))
	}

	var (
		errs    int
		elapsed time.Duration
	)
	done := false
	d.Env.Spawn("replay", func(p *sim.Proc) {
		t0 := p.Now()
		errs = workload.Replay(p, d.Clients[0], trace)
		p.Flush()
		elapsed = p.Now() - t0
		done = true
	})
	for !done && d.Env.Now() < *deadline {
		step := 100 * time.Millisecond
		if rem := *deadline - d.Env.Now(); rem < step {
			step = rem
		}
		d.Env.RunFor(step)
	}
	if !done {
		return fmt.Errorf("replay did not complete within -deadline %v of virtual time", *deadline)
	}
	rate := float64(len(trace)) / elapsed.Seconds()
	fmt.Fprintf(stdout, "replayed %d operations on %s in %v (virtual)\n", len(trace), setup.Name, elapsed.Round(time.Millisecond))
	fmt.Fprintf(stdout, "sequential throughput: %s ops/s   errors: %d\n", metrics.FormatOps(rate), errs)
	fmt.Fprintf(stdout, "cross-AZ traffic: %.2f MB\n", float64(d.Net.CrossZoneBytes())/1e6)
	// Mirror hopsbench: note the bench package is the place for load tests.
	fmt.Fprintln(stdout, "(replay is sequential; use hopsbench for closed-loop load)")

	if *withTrace {
		warnTruncated(stdout, sink)
		samples := d.Registry.Snapshot()
		fmt.Fprintf(stdout, "\ntransaction phase latency:\n%s", bench.RenderPhaseTable(samples))
		fmt.Fprintf(stdout, "\ncross-AZ bytes per operation type:\n%s", bench.RenderCrossAZTable(samples))
		if d.DB != nil {
			fmt.Fprintf(stdout, "\nlock contention:\n%s", d.DB.Contention().Render(10))
		}
		fmt.Fprintf(stdout, "\nslowest %d operations (of %d traced):\n", *slowest, sink.Total())
		for _, sp := range sink.Slowest(*slowest) {
			fmt.Fprintln(stdout, sp.Render())
		}
	}
	return nil
}

// warnTruncated prints a truncation warning when a report or export is
// built from a span ring that evicted spans.
func warnTruncated(w io.Writer, sink *trace.Sink) {
	if d := sink.Dropped(); d > 0 {
		fmt.Fprintf(w, "warning: span ring dropped %d of %d spans; output is truncated (raise the sink capacity)\n",
			d, sink.Total())
	}
}

// buildReplayDeployment builds a deployment sized for clients concurrent
// replay clients over servers metadata servers.
func buildReplayDeployment(setupName string, seed int64, servers, clients, shards int) (*core.Deployment, error) {
	setup, ok := core.SetupByName(setupName)
	if !ok {
		return nil, fmt.Errorf("unknown setup %q", setupName)
	}
	opts := core.DefaultOptions(setup)
	opts.MetadataServers = servers
	opts.ClientsPerServer = (clients + servers - 1) / servers
	opts.Shards = shards
	opts.Seed = seed
	return core.Build(opts)
}

// replayConcurrent shards a trace round-robin over clients concurrent
// replay processes and drives the simulation until every shard completes
// (or the virtual deadline passes). Concurrency is what makes the profile
// interesting: operations from different clients collide on shared
// directories, exercising lock contention the way closed-loop load does.
func replayConcurrent(d *core.Deployment, traceOps []workload.TraceOp, clients int, deadline time.Duration) (elapsed time.Duration, errs int, err error) {
	if clients > len(d.Clients) {
		clients = len(d.Clients)
	}
	if clients < 1 {
		clients = 1
	}
	shards := make([][]workload.TraceOp, clients)
	for i, op := range traceOps {
		shards[i%clients] = append(shards[i%clients], op)
	}
	done := 0
	for i := 0; i < clients; i++ {
		i := i
		fs := d.Clients[i]
		d.Env.Spawn(fmt.Sprintf("replay-%d", i), func(p *sim.Proc) {
			errs += workload.Replay(p, fs, shards[i])
			p.Flush()
			if t := p.Now(); t > elapsed {
				elapsed = t
			}
			done++
		})
	}
	for done < clients && d.Env.Now() < deadline {
		step := 100 * time.Millisecond
		if rem := deadline - d.Env.Now(); rem < step {
			step = rem
		}
		d.Env.RunFor(step)
	}
	if done < clients {
		return 0, 0, fmt.Errorf("replay did not complete within -deadline %v of virtual time", deadline)
	}
	return elapsed, errs, nil
}

func runProfile(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	setupName := fs.String("setup", "HopsFS-CL (3,3)", "deployment setup")
	seed := fs.Int64("seed", 1, "simulation seed")
	ops := fs.Int("ops", 2000, "operations to generate and replay")
	servers := fs.Int("servers", 3, "metadata servers")
	clients := fs.Int("clients", 8, "concurrent replay clients")
	deadline := fs.Duration("deadline", 1000*time.Second, "virtual-time budget for the replay")
	format := fs.String("format", "text", "output format: text, folded, or chrome")
	out := fs.String("out", "", "output file (default stdout)")
	sinkCap := fs.Int("sink", 0, "span ring capacity (default ops+64)")
	top := fs.Int("top", 10, "rows in the contention tables")
	shards := fs.Int("shards", 1, "NDB clusters the namespace is hash-sharded across")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "text", "folded", "chrome":
	default:
		return fmt.Errorf("unknown -format %q (want text, folded or chrome)", *format)
	}
	traceOps := genTrace(*ops, *seed)
	d, err := buildReplayDeployment(*setupName, *seed, *servers, *clients, *shards)
	if err != nil {
		return err
	}
	defer d.Close()
	cap := *sinkCap
	if cap <= 0 {
		cap = len(traceOps) + 64
	}
	sink := d.EnableTracing(cap)
	elapsed, errs, err := replayConcurrent(d, traceOps, *clients, *deadline)
	if err != nil {
		return err
	}

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	spans := sink.Spans()
	switch *format {
	case "folded":
		warnTruncated(os.Stderr, sink)
		_, err = io.WriteString(w, profile.FoldedStacks(spans))
		return err
	case "chrome":
		warnTruncated(os.Stderr, sink)
		return profile.WriteChromeTrace(w, spans)
	}
	fmt.Fprintf(w, "profiled %d operations on %s (seed %d, %d replay clients, %v virtual, %d errors)\n",
		len(traceOps), d.Setup.Name, *seed, *clients, elapsed.Round(time.Millisecond), errs)
	warnTruncated(w, sink)
	rep := profile.Analyze(spans)
	fmt.Fprintf(w, "\ncritical-path attribution (share of end-to-end time per op type):\n%s", rep.Table())
	fmt.Fprintln(w)
	if d.DB != nil {
		fmt.Fprint(w, d.DB.Contention().Render(*top))
	} else {
		fmt.Fprintln(w, "(no contention ledger: CephFS setups run untraced)")
	}
	return nil
}

func runTimeline(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("timeline", flag.ContinueOnError)
	setupName := fs.String("setup", "HopsFS-CL (3,3)", "deployment setup")
	seed := fs.Int64("seed", 1, "simulation seed")
	ops := fs.Int("ops", 2000, "operations to generate and replay")
	servers := fs.Int("servers", 3, "metadata servers")
	clients := fs.Int("clients", 8, "concurrent replay clients")
	deadline := fs.Duration("deadline", 1000*time.Second, "virtual-time budget for the replay")
	interval := fs.Duration("interval", 20*time.Millisecond, "flight-recorder sampling interval (virtual time)")
	keep := fs.String("keep", "op.,txn.,net.link.,ndb.contention.", "comma-separated metric name prefixes to record")
	out := fs.String("out", "", "output file (default stdout)")
	shards := fs.Int("shards", 1, "NDB clusters the namespace is hash-sharded across")
	if err := fs.Parse(args); err != nil {
		return err
	}
	traceOps := genTrace(*ops, *seed)
	d, err := buildReplayDeployment(*setupName, *seed, *servers, *clients, *shards)
	if err != nil {
		return err
	}
	defer d.Close()
	var prefixes []string
	for _, p := range strings.Split(*keep, ",") {
		if p = strings.TrimSpace(p); p != "" {
			prefixes = append(prefixes, p)
		}
	}
	fr := d.EnableFlightRecorder(*interval, 0, prefixes...)
	if _, _, err := replayConcurrent(d, traceOps, *clients, *deadline); err != nil {
		return err
	}
	d.StopBackground()

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := fr.WriteCSV(w); err != nil {
		return err
	}
	if fr.Dropped() > 0 {
		fmt.Fprintf(os.Stderr, "warning: flight recorder dropped %d frames; timeline is truncated (raise -interval)\n", fr.Dropped())
	}
	if *out != "" {
		fmt.Fprintf(stdout, "wrote %d frames to %s\n", len(fr.Frames()), *out)
	}
	return nil
}

func runHotspots(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("hotspots", flag.ContinueOnError)
	setupName := fs.String("setup", "HopsFS-CL (3,3)", "deployment setup")
	seed := fs.Int64("seed", 1, "simulation seed")
	ops := fs.Int("ops", 2000, "operations to generate and replay")
	servers := fs.Int("servers", 3, "metadata servers")
	clients := fs.Int("clients", 8, "concurrent replay clients")
	deadline := fs.Duration("deadline", 1000*time.Second, "virtual-time budget for the replay")
	format := fs.String("format", "text", "output format: text or csv")
	topN := fs.Int("top", 10, "rows per heat family")
	withExemplars := fs.Bool("exemplars", false, "pin tail exemplars (detailed tracing + SLO engine) and render them through the profiler")
	out := fs.String("out", "", "output file (default stdout)")
	shards := fs.Int("shards", 1, "NDB clusters the namespace is hash-sharded across (adds the per-shard heat family)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *format {
	case "text", "csv":
	default:
		return fmt.Errorf("unknown -format %q (want text or csv)", *format)
	}
	traceOps := genTrace(*ops, *seed)
	d, err := buildReplayDeployment(*setupName, *seed, *servers, *clients, *shards)
	if err != nil {
		return err
	}
	defer d.Close()
	h := d.EnableHeat(heat.Config{TopN: *topN})
	var (
		exemplars *slo.Exemplars
		sink      *trace.Sink
	)
	if *withExemplars {
		sink = d.EnableTracing(len(traceOps) + 64)
		d.EnableSLO(slo.Spec{}) // defaults: per-op p99 objectives
		exemplars = d.EnableExemplars(slo.ExemplarConfig{})
	}
	elapsed, errs, err := replayConcurrent(d, traceOps, *clients, *deadline)
	if err != nil {
		return err
	}
	d.StopBackground()
	now := d.Env.Now()
	rep := h.Snapshot(now, *topN)

	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if *format == "csv" {
		if *withExemplars {
			fmt.Fprintln(os.Stderr, "warning: -exemplars output is text-only; the CSV carries the heat families")
		}
		return rep.WriteCSV(w)
	}
	fmt.Fprintf(w, "hotspots of %d operations on %s (seed %d, %d replay clients, %v virtual, %d errors)\n\n",
		len(traceOps), d.Setup.Name, *seed, *clients, elapsed.Round(time.Millisecond), errs)
	if _, err := io.WriteString(w, rep.Render()); err != nil {
		return err
	}
	if exemplars == nil {
		return nil
	}
	warnTruncated(w, sink)
	xrep := exemplars.Report(now)
	fmt.Fprintln(w)
	if _, err := io.WriteString(w, xrep.Render()); err != nil {
		return err
	}
	// Link every pinned exemplar into the critical-path profiler: one
	// attribution table over the pinned span trees, then the slowest
	// exemplar rendered as a flame-style tree.
	var roots []*trace.Span
	var slowest *slo.Exemplar
	for _, c := range xrep.Classes {
		for _, ex := range c.Exemplars {
			roots = append(roots, ex.Root)
			if slowest == nil || ex.Latency > slowest.Latency ||
				(ex.Latency == slowest.Latency && ex.Root.ID < slowest.Root.ID) {
				slowest = ex
			}
		}
	}
	if len(roots) == 0 {
		return nil
	}
	fmt.Fprintf(w, "\ncritical-path attribution over the %d pinned exemplars:\n%s", len(roots), profile.Analyze(roots).Table())
	fmt.Fprintf(w, "\nslowest exemplar (op %s, %v, reason %s):\n%s\n",
		slowest.Op, slowest.Latency, slowest.Reason, slowest.Root.Render())
	return nil
}

func runAutoscale(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("autoscale", flag.ContinueOnError)
	seed := fs.Int64("seed", 1, "simulation seed")
	profFile := fs.String("profile", "", "load-profile file (default: the built-in compressed week)")
	out := fs.String("out", "", "write the flight-recorder timeline CSV to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	o := bench.DefaultElasticOptions(*seed)
	if *profFile != "" {
		text, err := os.ReadFile(*profFile)
		if err != nil {
			return err
		}
		prof, err := loadshape.Parse(string(text))
		if err != nil {
			return err
		}
		o.Profile = prof
	}
	r, err := bench.RunElastic(bench.ModeElastic, o)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "elastic run over %d virtual days (%v each), %d paced clients, seed %d\n",
		o.Profile.Days, o.Profile.Day, o.Clients, *seed)
	fmt.Fprintf(stdout, "ops %d  errors %d  serving %d..%d  time>SLO %v (%.1f%%)  NN-seconds %.1f\n",
		r.Ops, r.Errors, r.MinServing, r.MaxServing,
		r.OverSLO.Round(time.Millisecond), r.OverSLOFraction()*100, r.NNSeconds)
	fmt.Fprintf(stdout, "audit checkpoints %d  violations %d  failed quiesces %d\n",
		r.Checkpoints, len(r.Violations), r.FailedQuiesces)
	for _, v := range r.Violations {
		fmt.Fprintf(stdout, "  VIOLATION %s\n", v)
	}
	fmt.Fprintf(stdout, "\nscale events (%d up, %d down):\n%s",
		r.ScaleUps, r.ScaleDowns, autoscale.RenderEvents(r.Events))
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := r.Recorder.WriteCSV(f); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\nwrote %d timeline frames to %s\n", len(r.Recorder.Frames()), *out)
	}
	return nil
}

func runSLO(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("slo", flag.ContinueOnError)
	setupName := fs.String("setup", "HopsFS-CL (3,3)", "deployment setup")
	seed := fs.Int64("seed", 1, "simulation seed")
	specFile := fs.String("spec", "", "SLO spec file (default: built-in slo.DefaultSpec)")
	schedFile := fs.String("schedule", "", "fault schedule file (default: the three-class detection schedule)")
	faults := fs.Int("faults", 0, "generate N random faults instead of the detection schedule")
	campLen := fs.Duration("len", 0, "campaign length for -faults generation (default 30s)")
	out := fs.String("out", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := chaos.CampaignOptions{SetupName: *setupName, SLO: true}
	if *specFile != "" {
		text, err := os.ReadFile(*specFile)
		if err != nil {
			return err
		}
		spec, err := slo.ParseSpec(string(text))
		if err != nil {
			return err
		}
		opts.SLOSpec = spec
	}
	switch {
	case *schedFile != "":
		text, err := os.ReadFile(*schedFile)
		if err != nil {
			return err
		}
		sched, err := chaos.ParseSchedule(string(text))
		if err != nil {
			return err
		}
		opts.Schedule = sched
	case *faults > 0:
		opts.Faults = *faults
		opts.CampaignLen = *campLen
	default:
		opts.Schedule = chaos.DetectionSchedule()
	}
	rep, err := chaos.RunCampaign(*seed, opts)
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if _, err := io.WriteString(w, rep.Render()); err != nil {
		return err
	}
	if rep.SLO != nil {
		fmt.Fprintln(w)
		if _, err := io.WriteString(w, rep.SLO.Render()); err != nil {
			return err
		}
	}
	return nil
}

// nopFS satisfies workload.FS with no-ops so a trace can be generated
// without a live cluster.
type nopFS struct{}

var _ workload.FS = nopFS{}

func (nopFS) Mkdir(*sim.Proc, string) error          { return nil }
func (nopFS) Create(*sim.Proc, string) error         { return nil }
func (nopFS) Stat(*sim.Proc, string) error           { return nil }
func (nopFS) Read(*sim.Proc, string) error           { return nil }
func (nopFS) List(*sim.Proc, string) error           { return nil }
func (nopFS) Delete(*sim.Proc, string) error         { return nil }
func (nopFS) Rename(*sim.Proc, string, string) error { return nil }
func (nopFS) SetPermission(*sim.Proc, string) error  { return nil }
