package main

import (
	"encoding/csv"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.txt")
	var out strings.Builder
	if err := run([]string{"gen", "-ops", "500", "-out", trace}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines < 400 {
		t.Fatalf("trace has %d lines, want ~500", lines)
	}
	out.Reset()
	if err := run([]string{"replay", "-in", trace, "-servers", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "errors: 0") {
		t.Fatalf("replay errored:\n%s", report)
	}
	if !strings.Contains(report, "HopsFS-CL (3,3)") {
		t.Fatalf("unexpected report:\n%s", report)
	}
}

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// checkGolden compares got against the named golden file byte-for-byte,
// rewriting it under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./cmd/hopstrace -run Golden -update` to create)", err)
	}
	if got != string(want) {
		t.Fatalf("output differs from %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// profileArgs is a small fixed-seed profiling run shared by the golden
// tests: big enough to exercise every op type, small enough to stay fast.
func profileArgs(format string) []string {
	return []string{"profile", "-ops", "300", "-seed", "7", "-clients", "6", "-format", format}
}

func TestProfileGolden(t *testing.T) {
	var out strings.Builder
	if err := run(profileArgs("text"), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "critical-path attribution") {
		t.Fatalf("missing attribution table:\n%s", out.String())
	}
	checkGolden(t, "profile.golden", out.String())

	// Byte-identical across runs in the same process too.
	var again strings.Builder
	if err := run(profileArgs("text"), &again); err != nil {
		t.Fatal(err)
	}
	if out.String() != again.String() {
		t.Fatal("profile output not deterministic across same-seed runs")
	}
}

func TestProfileChromeGolden(t *testing.T) {
	var out strings.Builder
	if err := run(profileArgs("chrome"), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.HasPrefix(got, `{"displayTimeUnit":"ms"`) || !strings.Contains(got, `"ph":"X"`) {
		t.Fatalf("not a chrome trace:\n%.200s", got)
	}
	checkGolden(t, "profile_chrome.golden", got)
}

func TestProfileFoldedGolden(t *testing.T) {
	var out strings.Builder
	if err := run(profileArgs("folded"), &out); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if len(strings.Fields(line)) != 2 {
			t.Fatalf("malformed folded line %q", line)
		}
	}
	checkGolden(t, "profile_folded.golden", out.String())
}

func TestTimelineCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"timeline", "-ops", "300", "-seed", "7", "-clients", "6", "-interval", "10ms"}, &out); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(strings.NewReader(out.String())).ReadAll()
	if err != nil {
		t.Fatalf("timeline is not valid CSV: %v", err)
	}
	if len(rows) < 3 {
		t.Fatalf("timeline too short:\n%s", out.String())
	}
	header := strings.Join(rows[0], "|")
	if rows[0][0] != "t_ms" || !strings.Contains(header, "net.link.bytes") {
		t.Fatalf("timeline header = %q", header)
	}
	for i, r := range rows[1:] {
		if len(r) != len(rows[0]) {
			t.Fatalf("row %d has %d fields, header has %d", i+1, len(r), len(rows[0]))
		}
	}

	var again strings.Builder
	if err := run([]string{"timeline", "-ops", "300", "-seed", "7", "-clients", "6", "-interval", "10ms"}, &again); err != nil {
		t.Fatal(err)
	}
	if out.String() != again.String() {
		t.Fatal("timeline not deterministic across same-seed runs")
	}
}

func TestBadInvocations(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"frob"}, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"replay", "-setup", "nope", "-in", "/dev/null"}, &out); err == nil {
		t.Fatal("unknown setup accepted")
	}
	if err := run([]string{"replay", "-in", "/nonexistent-file"}, &out); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

// hotspotsArgs is the fixed seed-1 hotspots run the golden file pins.
func hotspotsArgs(format string) []string {
	return []string{"hotspots", "-ops", "800", "-seed", "1", "-clients", "8", "-format", format, "-exemplars"}
}

func TestHotspotsGolden(t *testing.T) {
	var out strings.Builder
	if err := run(hotspotsArgs("text"), &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"hottest subtree depth 1", "hottest table", "hottest partition", "exemplars:", "critical-path attribution"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in hotspots report:\n%s", want, got)
		}
	}
	checkGolden(t, "hotspots_seed1.golden", got)

	// Byte-identical across runs in the same process too.
	var again strings.Builder
	if err := run(hotspotsArgs("text"), &again); err != nil {
		t.Fatal(err)
	}
	if got != again.String() {
		t.Fatal("hotspots output not deterministic across same-seed runs")
	}
}

func TestHotspotsCSV(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"hotspots", "-ops", "400", "-seed", "1", "-format", "csv"}, &out); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(strings.NewReader(out.String()))
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatalf("hotspots -format csv is not well-formed CSV: %v", err)
	}
	if len(rows) < 2 {
		t.Fatalf("csv has %d rows, want header plus data", len(rows))
	}
	if want := []string{"family", "rank", "key", "touches", "share", "err"}; strings.Join(rows[0], ",") != strings.Join(want, ",") {
		t.Fatalf("csv header = %v, want %v", rows[0], want)
	}
}

func TestUnknownSubcommandSuggestion(t *testing.T) {
	err := run([]string{"timline"}, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), `did you mean "timeline"?`) {
		t.Fatalf("want a timeline suggestion, got: %v", err)
	}
	if !strings.Contains(err.Error(), "hotspots") || !strings.Contains(err.Error(), "slo") {
		t.Fatalf("usage in error should list every subcommand, got: %v", err)
	}
	// Nothing plausibly close: no suggestion, usage still shown.
	err = run([]string{"frobnicate"}, &strings.Builder{})
	if err == nil || strings.Contains(err.Error(), "did you mean") {
		t.Fatalf("want no suggestion for %q, got: %v", "frobnicate", err)
	}
	if !strings.Contains(err.Error(), "subcommands:") {
		t.Fatalf("usage missing from error: %v", err)
	}
}
