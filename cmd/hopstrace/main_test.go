package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.txt")
	var out strings.Builder
	if err := run([]string{"gen", "-ops", "500", "-out", trace}, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(string(data), "\n")
	if lines < 400 {
		t.Fatalf("trace has %d lines, want ~500", lines)
	}
	out.Reset()
	if err := run([]string{"replay", "-in", trace, "-servers", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	report := out.String()
	if !strings.Contains(report, "errors: 0") {
		t.Fatalf("replay errored:\n%s", report)
	}
	if !strings.Contains(report, "HopsFS-CL (3,3)") {
		t.Fatalf("unexpected report:\n%s", report)
	}
}

func TestBadInvocations(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out); err == nil {
		t.Fatal("no args accepted")
	}
	if err := run([]string{"frob"}, &out); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	if err := run([]string{"replay", "-setup", "nope", "-in", "/dev/null"}, &out); err == nil {
		t.Fatal("unknown setup accepted")
	}
	if err := run([]string{"replay", "-in", "/nonexistent-file"}, &out); err == nil {
		t.Fatal("missing trace file accepted")
	}
}
