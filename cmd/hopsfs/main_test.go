package main

import (
	"testing"

	"hopsfscl"
)

func TestParseSize(t *testing.T) {
	tests := []struct {
		give    string
		want    int64
		wantErr bool
	}{
		{give: "0", want: 0},
		{give: "123", want: 123},
		{give: "64K", want: 64 << 10},
		{give: "300M", want: 300 << 20},
		{give: "2G", want: 2 << 30},
		{give: "x", wantErr: true},
		{give: "12Q", wantErr: true},
	}
	for _, tt := range tests {
		got, err := parseSize(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseSize(%q) err = %v", tt.give, err)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("parseSize(%q) = %d, want %d", tt.give, got, tt.want)
		}
	}
}

func TestShellEvalCommands(t *testing.T) {
	cluster, err := hopsfscl.New()
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	sh := &shell{cluster: cluster, fs: cluster.Client(1), zone: 1}

	script := [][]string{
		{"mkdir", "/a/b"},
		{"put", "/a/b/f", "1K"},
		{"cat", "/a/b/f"},
		{"ls", "/a/b"},
		{"stat", "/a/b/f"},
		{"chmod", "600", "/a/b/f"},
		{"mv", "/a/b/f", "/a/g"},
		{"rm", "/a/g"},
		{"rm", "-r", "/a"},
		{"leader"},
		{"stats"},
		{"zone", "2"},
	}
	for _, cmd := range script {
		if err := sh.eval(cmd); err != nil {
			t.Fatalf("%v: %v", cmd, err)
		}
	}
	if sh.zone != 2 {
		t.Fatalf("zone switch did not stick: %d", sh.zone)
	}
	// Error paths.
	for _, cmd := range [][]string{
		{"bogus"},
		{"mkdir"},
		{"put", "/x"},
		{"put", "/x", "nope"},
		{"zone", "9"},
		{"cat", "/missing"},
	} {
		if err := sh.eval(cmd); err == nil {
			t.Fatalf("%v succeeded, want error", cmd)
		}
	}
}

func TestShellDemoRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("demo drives a full cluster")
	}
	cluster, err := hopsfscl.New()
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	sh := &shell{cluster: cluster, fs: cluster.Client(1), zone: 1}
	if err := sh.demo(); err != nil {
		t.Fatal(err)
	}
}

func TestRunArgParsing(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
	if err := run([]string{"-setup"}); err == nil {
		t.Fatal("dangling -setup accepted")
	}
	if err := run([]string{"-seed", "zzz"}); err == nil {
		t.Fatal("bad seed accepted")
	}
	if err := run([]string{"-setup", "HopsFS (9,9)", "demo"}); err == nil {
		t.Fatal("bogus setup accepted")
	}
}
