// Command hopsfs is an interactive shell over a simulated HopsFS-CL
// cluster: it builds a three-AZ deployment and executes file system and
// failure-injection commands against it.
//
// Usage:
//
//	hopsfs [-setup "HopsFS-CL (3,3)"] [-seed N] [demo | chaos <schedule-file>]
//
// With "demo" it runs a scripted tour (namespace ops, atomic rename, AZ
// failure, split brain). With "chaos <schedule-file>" it runs the fault
// schedule under the chaos engine's audited workload and prints the
// campaign report (see DESIGN.md for the schedule syntax). Without
// arguments it reads commands from stdin:
//
//	mkdir <path>          create a directory (parents created as needed)
//	put <path> <size>     write a file of <size> bytes (e.g. 64K, 300M)
//	cat <path>            read a file
//	ls <path>             list a directory
//	stat <path>           show metadata
//	mv <src> <dst>        atomic rename
//	rm [-r] <path>        delete
//	chmod <octal> <path>  set permissions
//	fail-zone <1|2|3>     fail an availability zone
//	partition <a> <b>     sever the network between two zones
//	heal <a> <b>          restore it
//	fail-nn <i>           kill metadata server i
//	leader                show the elected leader
//	stats                 show cluster counters
//	zone <1|2|3>          switch the client's availability zone
//	help | quit
package main

import (
	"bufio"
	"fmt"
	"os"
	"strconv"
	"strings"

	"hopsfscl"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hopsfs:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	setupName := "HopsFS-CL (3,3)"
	seed := int64(1)
	demo := false
	chaosFile := ""
	for i := 0; i < len(args); i++ {
		switch args[i] {
		case "-setup":
			i++
			if i >= len(args) {
				return fmt.Errorf("-setup needs a value")
			}
			setupName = args[i]
		case "-seed":
			i++
			if i >= len(args) {
				return fmt.Errorf("-seed needs a value")
			}
			v, err := strconv.ParseInt(args[i], 10, 64)
			if err != nil {
				return err
			}
			seed = v
		case "demo":
			demo = true
		case "chaos":
			i++
			if i >= len(args) {
				return fmt.Errorf("chaos needs a schedule file")
			}
			chaosFile = args[i]
		default:
			return fmt.Errorf("unknown argument %q", args[i])
		}
	}

	fmt.Printf("building %s (seed %d)...\n", setupName, seed)
	cluster, err := hopsfscl.New(hopsfscl.WithSetup(setupName), hopsfscl.WithSeed(seed))
	if err != nil {
		return err
	}
	defer cluster.Close()
	fmt.Printf("zones: %s — leader: nn-%d\n", strings.Join(cluster.Zones(), ", "), cluster.LeaderID())

	if chaosFile != "" {
		return runChaos(cluster, chaosFile, seed)
	}
	sh := &shell{cluster: cluster, fs: cluster.Client(1), zone: 1}
	if demo {
		return sh.demo()
	}
	return sh.repl()
}

// runChaos executes a fault schedule file under the chaos engine and
// prints the campaign report.
func runChaos(cluster *hopsfscl.Cluster, file string, seed int64) error {
	text, err := os.ReadFile(file)
	if err != nil {
		return err
	}
	fmt.Printf("running chaos schedule %s (workload seed %d)...\n", file, seed)
	rep, err := cluster.RunChaos(string(text), seed)
	if err != nil {
		return err
	}
	fmt.Print(rep.Render())
	if rep.Clean() {
		fmt.Println("campaign clean: all invariants held, no acknowledged write lost.")
	} else {
		fmt.Println("campaign found VIOLATIONS — see above.")
	}
	return nil
}

type shell struct {
	cluster *hopsfscl.Cluster
	fs      *hopsfscl.FS
	zone    int
}

func (s *shell) repl() error {
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("hopsfs> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "quit" || line == "exit" {
			return nil
		}
		if line != "" {
			if err := s.eval(strings.Fields(line)); err != nil {
				fmt.Println("error:", err)
			}
		}
		fmt.Print("hopsfs> ")
	}
	return scanner.Err()
}

func (s *shell) eval(f []string) error {
	switch f[0] {
	case "help":
		fmt.Println("commands: mkdir put cat ls stat mv rm chmod fail-zone partition heal fail-nn leader stats zone quit")
		return nil
	case "mkdir":
		if len(f) != 2 {
			return fmt.Errorf("usage: mkdir <path>")
		}
		return s.fs.MkdirAll(f[1])
	case "put":
		if len(f) != 3 {
			return fmt.Errorf("usage: put <path> <size>")
		}
		size, err := parseSize(f[2])
		if err != nil {
			return err
		}
		if err := s.fs.WriteFile(f[1], size); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d bytes)\n", f[1], size)
		return nil
	case "cat":
		if len(f) != 2 {
			return fmt.Errorf("usage: cat <path>")
		}
		info, err := s.fs.ReadFile(f[1])
		if err != nil {
			return err
		}
		where := "inline in NDB"
		if info.Blocks > 0 {
			where = fmt.Sprintf("%d blocks", info.Blocks)
		}
		fmt.Printf("read %s: %d bytes (%s)\n", f[1], info.Size, where)
		return nil
	case "ls":
		if len(f) != 2 {
			return fmt.Errorf("usage: ls <path>")
		}
		kids, err := s.fs.List(f[1])
		if err != nil {
			return err
		}
		for _, k := range kids {
			kind := "-"
			if k.Dir {
				kind = "d"
			}
			fmt.Printf("%s %04o %-8s %10d  %s\n", kind, k.Perm, k.Owner, k.Size, k.Name)
		}
		return nil
	case "stat":
		if len(f) != 2 {
			return fmt.Errorf("usage: stat <path>")
		}
		info, err := s.fs.Stat(f[1])
		if err != nil {
			return err
		}
		fmt.Printf("%+v\n", info)
		return nil
	case "mv":
		if len(f) != 3 {
			return fmt.Errorf("usage: mv <src> <dst>")
		}
		return s.fs.Rename(f[1], f[2])
	case "rm":
		recursive := false
		path := ""
		switch {
		case len(f) == 2:
			path = f[1]
		case len(f) == 3 && f[1] == "-r":
			recursive, path = true, f[2]
		default:
			return fmt.Errorf("usage: rm [-r] <path>")
		}
		return s.fs.Delete(path, recursive)
	case "chmod":
		if len(f) != 3 {
			return fmt.Errorf("usage: chmod <octal> <path>")
		}
		perm, err := strconv.ParseUint(f[1], 8, 16)
		if err != nil {
			return err
		}
		return s.fs.SetPermission(f[2], uint16(perm))
	case "fail-zone":
		z, err := zoneArg(f, 2)
		if err != nil {
			return err
		}
		s.cluster.FailZone(z)
		fmt.Printf("zone %d failed; leader is now nn-%d\n", z, s.cluster.LeaderID())
		return nil
	case "partition":
		if len(f) != 3 {
			return fmt.Errorf("usage: partition <a> <b>")
		}
		a, _ := strconv.Atoi(f[1])
		b, _ := strconv.Atoi(f[2])
		s.cluster.PartitionZones(a, b)
		fmt.Println("partition injected; the arbitrator resolves the split brain")
		return nil
	case "heal":
		if len(f) != 3 {
			return fmt.Errorf("usage: heal <a> <b>")
		}
		a, _ := strconv.Atoi(f[1])
		b, _ := strconv.Atoi(f[2])
		s.cluster.HealZones(a, b)
		return nil
	case "fail-nn":
		if len(f) != 2 {
			return fmt.Errorf("usage: fail-nn <i>")
		}
		i, err := strconv.Atoi(f[1])
		if err != nil {
			return err
		}
		if err := s.cluster.FailNameNode(i); err != nil {
			return err
		}
		fmt.Printf("nn-%d failed; leader is now nn-%d\n", i, s.cluster.LeaderID())
		return nil
	case "leader":
		fmt.Printf("leader: nn-%d\n", s.cluster.LeaderID())
		return nil
	case "stats":
		st := s.cluster.Stats()
		fmt.Printf("committed txns:     %d\n", st.CommittedTxns)
		fmt.Printf("aborted txns:       %d\n", st.AbortedTxns)
		fmt.Printf("cross-AZ traffic:   %d bytes\n", st.CrossZoneBytes)
		fmt.Printf("total traffic:      %d bytes\n", st.TotalBytes)
		fmt.Printf("re-replications:    %d\n", st.ReReplications)
		fmt.Printf("storage nodes up:   %d\n", st.AliveStorageNodes)
		fmt.Printf("metadata servers:   %d\n", st.AliveNameNodes)
		return nil
	case "zone":
		z, err := zoneArg(f, 2)
		if err != nil {
			return err
		}
		s.zone = z
		s.fs = s.cluster.Client(z)
		fmt.Printf("client now in zone %d\n", z)
		return nil
	default:
		return fmt.Errorf("unknown command %q (try help)", f[0])
	}
}

func zoneArg(f []string, n int) (int, error) {
	if len(f) != n {
		return 0, fmt.Errorf("usage: %s <zone>", f[0])
	}
	z, err := strconv.Atoi(f[1])
	if err != nil || z < 1 || z > 3 {
		return 0, fmt.Errorf("zone must be 1, 2 or 3")
	}
	return z, nil
}

// demo runs the scripted tour.
func (s *shell) demo() error {
	steps := [][]string{
		{"mkdir", "/warehouse/events"},
		{"put", "/warehouse/events/part-0", "64K"},
		{"put", "/warehouse/events/part-1", "300M"},
		{"ls", "/warehouse/events"},
		{"mv", "/warehouse/events", "/warehouse/events-v2"},
		{"ls", "/warehouse/events-v2"},
		{"stats"},
		{"fail-zone", "2"},
		{"cat", "/warehouse/events-v2/part-1"},
		{"put", "/warehouse/events-v2/part-2", "1M"},
		{"stats"},
	}
	for _, step := range steps {
		fmt.Printf("hopsfs> %s\n", strings.Join(step, " "))
		if err := s.eval(step); err != nil {
			return fmt.Errorf("%s: %w", step[0], err)
		}
	}
	fmt.Println("demo complete: the file system survived an AZ failure with no loss of service.")
	return nil
}

func parseSize(s string) (int64, error) {
	mult := int64(1)
	switch {
	case strings.HasSuffix(s, "K"):
		mult, s = 1<<10, strings.TrimSuffix(s, "K")
	case strings.HasSuffix(s, "M"):
		mult, s = 1<<20, strings.TrimSuffix(s, "M")
	case strings.HasSuffix(s, "G"):
		mult, s = 1<<30, strings.TrimSuffix(s, "G")
	}
	v, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad size %q", s)
	}
	return v * mult, nil
}
